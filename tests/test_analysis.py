"""Tests for the ``dsu-lint`` static update-safety analyzer: call-graph
construction, the restriction closure, safe-point reachability, transformer
type checking, the engine's pre-flight hook, and the superset guarantee
against the runtime restricted sets."""

import pytest

from repro.analysis import (
    analyze_update,
    build_call_graph,
    method_may_never_return,
    never_return_closure,
)
from repro.analysis.report import (
    CODE_BLOCKING_NATIVE,
    CODE_CAT2_NEVER_RETURNS,
    CODE_FIELD_UNASSIGNED,
    CODE_STALE_CATEGORY2,
    CODE_TRANSFORMER_READ,
    CODE_TRANSFORMER_WRITE,
    CODE_UNREACHABLE_SAFEPOINT,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
)
from repro.bytecode.instructions import Instr
from repro.compiler.compile import compile_source
from repro.dsu.engine import UpdateRequest
from repro.dsu.policy import UpdatePolicy
from repro.dsu.safepoint import RetryPolicy
from repro.dsu.upt import TRANSFORMERS_CLASS, prepare_update


# ---------------------------------------------------------------------------
# Pass 1: the call graph


HIERARCHY = """
class Animal { int noise() { return 0; } }
class Dog extends Animal { int noise() { return 1; } }
class Pug extends Dog { }
class Cat extends Animal { int noise() { return 3; } }
class Zoo {
    static int poll(Animal a) { return a.noise(); }
    static int pollDog(Dog d) { return d.noise(); }
    static int pollPug(Pug p) { return p.noise(); }
    static void main() { Zoo.poll(new Dog()); }
}
"""


class TestCallGraph:
    def graph(self, source=HIERARCHY):
        return build_call_graph(compile_source(source, version="1.0"))

    def test_virtual_dispatch_covers_every_override(self):
        graph = self.graph()
        callees = graph.callees[("Zoo", "poll", "(LAnimal;)I")]
        noise = {k for k in callees if k[1] == "noise"}
        assert noise == {
            ("Animal", "noise", "()I"),
            ("Dog", "noise", "()I"),
            ("Cat", "noise", "()I"),
        }

    def test_virtual_dispatch_narrows_with_receiver_type(self):
        graph = self.graph()
        callees = graph.callees[("Zoo", "pollDog", "(LDog;)I")]
        noise = {k for k in callees if k[1] == "noise"}
        # A Dog receiver can dispatch Dog's override (Pug inherits it),
        # but never Animal's or Cat's.
        assert noise == {("Dog", "noise", "()I")}

    def test_inherited_method_resolves_through_superclass_chain(self):
        graph = self.graph()
        callees = graph.callees[("Zoo", "pollPug", "(LPug;)I")]
        # Pug declares no noise(): the chain walks up to Dog.
        assert ("Dog", "noise", "()I") in callees

    def test_callers_is_the_reverse_edge_set(self):
        graph = self.graph()
        assert ("Zoo", "poll", "(LAnimal;)I") in graph.callers[
            ("Cat", "noise", "()I")
        ]

    def test_recursion_shows_up_in_transitive_callees(self):
        graph = self.graph(
            "class Fact { static int fact(int n) { "
            "if (n < 2) { return 1; } return n * Fact.fact(n - 1); } }"
        )
        key = ("Fact", "fact", "(I)I")
        assert key in graph.callees[key]
        assert key in graph.transitive_callees(key)

    def test_depths_rank_from_thread_roots(self):
        graph = self.graph()
        depths = graph.depths()
        assert depths[("Zoo", "main", "()V")] == 0
        assert depths[("Zoo", "poll", "(LAnimal;)I")] == 1
        # Dog.noise is also reachable from the uncalled pollDog root at
        # depth 1; Cat.noise is only reachable through poll.
        assert depths[("Cat", "noise", "()I")] == 2

    def test_missing_owner_is_recorded_not_dropped(self):
        classfiles = compile_source(
            "class Helper { static int assist() { return 1; } }"
            "class Caller { static int go() { return Helper.assist(); } }",
            version="1.0",
        )
        del classfiles["Helper"]
        graph = build_call_graph(classfiles)
        # (Object.<init> is also unresolved here: the prelude is absent
        # from a bare compile, which is exactly the point of recording.)
        sites = [s for s in graph.unresolved if s.owner == "Helper"]
        assert len(sites) == 1
        site = sites[0]
        assert site.caller == ("Caller", "go", "()I")
        assert (site.owner, site.name) == ("Helper", "assist")
        assert "INVOKESTATIC Helper.assist" in site.describe()

    def test_broken_superclass_chain_is_unresolved(self):
        classfiles = compile_source(
            "class Base { int m() { return 1; } }"
            "class Mid extends Base { }"
            "class Use { static int go(Mid x) { return x.m(); } }",
            version="1.0",
        )
        del classfiles["Base"]
        graph = build_call_graph(classfiles)
        assert any(
            site.caller == ("Use", "go", "(LMid;)I") and site.name == "m"
            for site in graph.unresolved
        )


# ---------------------------------------------------------------------------
# Pass 3 plumbing: the may-never-return CFG analysis


NEVER_RETURN = """
class Spin {
    static int n;
    static void forever() { while (true) { n = n + 1; } }
    static void bounded() { int i = 0; while (i < 10) { i = i + 1; } }
    static void escape() {
        while (true) { if (n > 5) { return; } n = n + 1; }
    }
    static void outer() { Spin.forever(); }
    static void clean() { Spin.bounded(); }
}
"""


class TestNeverReturn:
    def test_cfg_classification(self):
        spin = compile_source(NEVER_RETURN, version="1.0")["Spin"]
        assert method_may_never_return(spin.get_method("forever", "()V"))
        assert not method_may_never_return(spin.get_method("bounded", "()V"))
        assert not method_may_never_return(spin.get_method("escape", "()V"))

    def test_caller_is_pinned_beneath_nonreturning_callee(self):
        graph = build_call_graph(compile_source(NEVER_RETURN, version="1.0"))
        culprits = never_return_closure(graph)
        forever = ("Spin", "forever", "()V")
        assert culprits[forever] == forever
        assert culprits[("Spin", "outer", "()V")] == forever
        assert ("Spin", "clean", "()V") not in culprits


# ---------------------------------------------------------------------------
# Passes 2+3 end to end: closure, staleness, safe-point reachability


SERVER_V1 = """
class Server {
    static int beat;
    static void tick() { beat = beat + 1; }
    static void host() { Server.tick(); }
    static void run() { while (true) { Server.host(); } }
}
class Main { static void main() { Server.run(); } }
"""


def analyze_pair(v1, v2, **kwargs):
    old = compile_source(v1, version="1.0")
    prepared = prepare_update(
        old, compile_source(v2, version="2.0"), "1.0", "2.0", **kwargs
    )
    return old, prepared, analyze_update(old, prepared)


class TestClosureAndReachability:
    def test_inline_host_joins_the_predicted_set(self):
        v2 = SERVER_V1.replace("beat = beat + 1;", "beat = beat + 2;")
        _, prepared, report = analyze_pair(SERVER_V1, v2)
        tick = ("Server", "tick", "()V")
        host = ("Server", "host", "()V")
        assert tick in prepared.spec.category1()
        assert tick in report.predicted_restricted
        # host is unchanged, but any opt compile of it would inline tick.
        assert host not in prepared.spec.category1()
        assert host in report.predicted_restricted
        # tick returns, so nothing pins the safe point.
        assert not report.by_code(CODE_UNREACHABLE_SAFEPOINT)
        assert report.predicted_abort == ""

    def test_changed_infinite_loop_predicts_safepoint_abort(self):
        v2 = SERVER_V1.replace(
            "while (true) { Server.host(); }",
            "while (true) { Server.host(); Server.host(); }",
        )
        _, _, report = analyze_pair(SERVER_V1, v2)
        findings = report.by_code(CODE_UNREACHABLE_SAFEPOINT)
        assert [d.severity for d in findings] == [SEVERITY_ERROR]
        assert report.has_errors
        assert report.predicted_abort == "safepoint/timeout"
        run_key = ("Server", "run", "()V")
        assert report.blacklist_suggestions == [run_key]
        assert findings[0].method == run_key
        assert findings[0].suggestion.startswith(
            "blacklist Server.run()V (call-graph depth 1)"
        )

    def test_blacklisted_spinner_gets_no_redundant_suggestion(self):
        _, _, report = analyze_pair(
            SERVER_V1, SERVER_V1.replace("beat + 1", "beat + 2"),
            blacklist=[("Server", "run", "()V")],
        )
        findings = report.by_code(CODE_UNREACHABLE_SAFEPOINT)
        assert len(findings) == 1
        assert findings[0].suggestion == ""
        assert report.blacklist_suggestions == []

    def test_stale_category2_spec_is_an_error(self):
        v1 = (
            "class Box { int v; }"
            "class Reg { static Box make() { return new Box(); } }"
            "class Main { static void main() { } }"
        )
        v2 = v1.replace("int v;", "int v; int w;")
        old = compile_source(v1, version="1.0")
        prepared = prepare_update(
            old, compile_source(v2, version="2.0"), "1.0", "2.0"
        )
        assert prepared.spec.indirect_methods  # Reg.make bakes Box offsets
        dropped = sorted(prepared.spec.indirect_methods)[0]
        prepared.spec.indirect_methods.discard(dropped)
        report = analyze_update(old, prepared)
        findings = report.by_code(CODE_STALE_CATEGORY2)
        assert [d.method for d in findings] == [dropped]
        assert report.has_errors
        # The prediction covers what the spec *should* have restricted.
        assert dropped in report.predicted_restricted
        assert report.predicted_abort == "osr/osr-failed"

    def test_cat2_spinner_warns_but_does_not_doom(self):
        # The javaemail 1.3.2 shape: an unchanged infinite loop whose
        # class layout changed — OSR rescues it while base-compiled. The
        # new field is *prepended* so ``port`` genuinely moves and the
        # semantic-diff minimizer cannot prove the spinner's baked offset
        # stable (appending it would let the method escape restriction
        # entirely — see test_semdiff.py).
        v1 = (
            "class Conf { int port; }"
            "class Srv { static Conf c; static int n;"
            "  static void run() { while (true) { Srv.n = Srv.c.port; } } }"
            "class Main { static void main() { Srv.run(); } }"
        )
        v2 = v1.replace("int port;", "int backlog; int port;")
        _, _, report = analyze_pair(v1, v2)
        findings = report.by_code(CODE_CAT2_NEVER_RETURNS)
        assert [d.severity for d in findings] == [SEVERITY_WARNING]
        assert findings[0].method == ("Srv", "run", "()V")
        assert not report.has_errors
        assert report.predicted_abort == ""


# ---------------------------------------------------------------------------
# Pass 4: transformer type checking


USER_V1 = """
class User {
    string name;
    static int count;
}
class Main { static void main() { } }
"""

USER_V2 = """
class User {
    string name;
    int age;
    static int count;
}
class Main { static void main() { } }
"""

COMPLETE_OVERRIDE = {
    "User": """
    static void jvolveClass(User unused) {
        User.count = v10_User.count;
    }
    static void jvolveObject(User to, v10_User from) {
        to.name = from.name;
        to.age = 7;
    }
"""
}


class TestTransformerChecks:
    def prepared(self, overrides=COMPLETE_OVERRIDE):
        return analyze_pair(
            USER_V1, USER_V2, transformer_overrides=overrides
        )

    def jvolve_object(self, prepared):
        transformers = prepared.transformer_classfiles[TRANSFORMERS_CLASS]
        descriptor = f"(LUser;,L{prepared.prefix}User;)V"
        return transformers.get_method("jvolveObject", descriptor)

    def test_complete_transformer_is_clean(self):
        _, _, report = self.prepared()
        assert not report.has_errors
        assert report.predicted_abort == ""

    def test_read_of_unknown_old_field_is_an_error(self):
        old, prepared, _ = self.prepared()
        method = self.jvolve_object(prepared)
        for pc, instr in enumerate(method.instructions):
            if instr.op == "GETFIELD" and instr.b == "name":
                method.instructions[pc] = Instr("GETFIELD", instr.a, "ghost")
        report = analyze_update(old, prepared)
        findings = report.by_code(CODE_TRANSFORMER_READ)
        assert [d.severity for d in findings] == [SEVERITY_ERROR]
        assert "reads v10_User.ghost" in findings[0].message
        assert "old-version stub" in findings[0].message
        assert report.predicted_abort == "transform/transformer-error"

    def test_write_of_unknown_new_field_is_an_error(self):
        old, prepared, _ = self.prepared()
        method = self.jvolve_object(prepared)
        for pc, instr in enumerate(method.instructions):
            if instr.op == "PUTFIELD" and instr.b == "name":
                method.instructions[pc] = Instr("PUTFIELD", instr.a, "ghost")
        report = analyze_update(old, prepared)
        findings = report.by_code(CODE_TRANSFORMER_WRITE)
        assert [d.severity for d in findings] == [SEVERITY_ERROR]
        assert "writes User.ghost" in findings[0].message
        assert report.predicted_abort == "transform/transformer-error"

    def test_descriptor_incompatible_write_is_an_error(self):
        old, prepared, _ = self.prepared()
        method = self.jvolve_object(prepared)
        for pc, instr in enumerate(method.instructions):
            if instr.op == "PUTFIELD" and instr.b == "name":
                # Retarget the string store at the int field: the field
                # exists, so only abstract interpretation catches it.
                method.instructions[pc] = Instr("PUTFIELD", instr.a, "age")
        report = analyze_update(old, prepared)
        findings = report.by_code(CODE_TRANSFORMER_WRITE)
        assert findings and findings[0].severity == SEVERITY_ERROR
        assert "fails verification" in findings[0].message
        assert report.predicted_abort == "transform/transformer-error"

    def test_dead_store_to_old_stub_warns(self):
        override = {
            "User": COMPLETE_OVERRIDE["User"].replace(
                "to.name = from.name;",
                "to.name = from.name; from.name = to.name;",
            )
        }
        _, _, report = self.prepared(override)
        assert not report.has_errors
        dead = [
            d for d in report.by_code(CODE_TRANSFORMER_WRITE)
            if d.severity == SEVERITY_WARNING
        ]
        assert len(dead) == 1
        assert "the store is dead" in dead[0].message

    def test_unassigned_field_keyed_by_owner(self):
        # No transformer at all for the new field: DSU-PF02.
        _, _, report = self.prepared(overrides=None)
        findings = report.by_code(CODE_FIELD_UNASSIGNED)
        assert any("User.age is new" in d.message for d in findings)


# ---------------------------------------------------------------------------
# The engine pre-flight hook (``lint="warn"`` / ``"strict"``)


SPIN_V1 = """
class Loop {
    static int n;
    static void spin() { while (true) { Sys.sleep(5); n = n + 1; } }
}
class Main { static void main() { Loop.spin(); } }
"""


class TestEnginePreflight:
    def fixture(self):
        from tests.dsu_helpers import UpdateFixture

        return UpdateFixture(SPIN_V1).start()

    def test_strict_mode_refuses_a_doomed_update(self):
        fixture = self.fixture()
        prepared = fixture.prepare(SPIN_V1.replace("n + 1", "n + 2"))
        result = fixture.engine.submit(UpdateRequest(
            prepared,
            policy=UpdatePolicy(retry=RetryPolicy(timeout_ms=500.0),
                                lint="strict"),
        ))
        assert result.status == "aborted"
        assert result.failed_phase == "preflight"
        assert result.reason_code == "lint-rejected"
        assert result.reason.startswith("dsu-lint:")
        assert result.lint_errors >= 1
        assert result.lint_predicted_abort == "safepoint/timeout"
        # The VM was never signalled: no pending update, engine idle.
        assert fixture.engine.active is None
        assert not fixture.vm.update_pending
        assert fixture.engine.history[-1] is result

    def test_warn_mode_records_findings_but_proceeds(self):
        fixture = self.fixture()
        prepared = fixture.prepare(SPIN_V1.replace("n + 1", "n + 2"))
        result = fixture.engine.submit(UpdateRequest(
            prepared,
            policy=UpdatePolicy(retry=RetryPolicy(timeout_ms=200.0),
                                lint="warn"),
        ))
        assert result.lint_errors >= 1
        assert result.lint_predicted_abort == "safepoint/timeout"
        assert result.status != "aborted"
        assert fixture.engine.active is not None
        assert fixture.vm.update_pending

    def test_strict_mode_lets_a_clean_update_through(self):
        clean_v1 = """
class Greeter { static string greet() { return "v1"; } }
class Main {
    static int rounds;
    static void main() {
        while (rounds < 10) {
            Sys.print(Greeter.greet());
            Sys.sleep(10);
            rounds = rounds + 1;
        }
    }
}
"""
        from tests.dsu_helpers import UpdateFixture

        fixture = UpdateFixture(clean_v1).start()
        prepared = fixture.prepare(clean_v1.replace('"v1"', '"v2"'))
        result = fixture.engine.submit(UpdateRequest(
            prepared,
            policy=UpdatePolicy(retry=RetryPolicy(timeout_ms=500.0),
                                lint="strict"),
        ))
        assert result.status != "aborted"
        assert result.lint_errors == 0
        assert fixture.vm.update_pending

    def test_unknown_lint_mode_is_rejected(self):
        fixture = self.fixture()
        prepared = fixture.prepare(SPIN_V1.replace("n + 1", "n + 2"))
        with pytest.raises(ValueError):
            UpdateRequest(prepared, policy=UpdatePolicy(lint="eventually"))


# ---------------------------------------------------------------------------
# Acceptance: the predicted closure over-approximates the runtime sets on
# every bundled update, whatever the JIT happened to opt-compile.


def _all_pairs():
    from repro.apps.registry import APPS, update_pairs

    return [
        (app, a, b) for app in APPS for a, b in update_pairs(app)
    ]


class TestPredictionSupersetsRuntime:
    @pytest.mark.parametrize(
        "app,from_version,to_version",
        _all_pairs(),
        ids=[f"{a}-{f}-{t}" for a, f, t in _all_pairs()],
    )
    def test_predicted_restricted_superset(self, app, from_version, to_version):
        from repro.apps.registry import APPS
        from repro.dsu.safepoint import (
            observed_restriction_keys,
            resolve_restricted,
        )
        from repro.harness.updates import AppDriver

        info = APPS[app]
        driver = AppDriver(
            app, info.versions, info.main_class,
            transformer_overrides=info.transformer_overrides,
        )
        driver.boot(from_version)
        prepared = driver.prepare_pair(from_version, to_version)
        report = analyze_update(driver.classfiles(from_version), prepared)

        # Adversarial runtime: opt-compile *everything*, so every possible
        # inline host materializes, then compare against the prediction.
        vm = driver.vm
        for entry in list(vm.methods.all_entries()):
            if entry.info.is_native:
                continue
            try:
                vm.jit.compile_opt(entry)
            except Exception:
                continue
        sets = resolve_restricted(vm, prepared.spec)
        observed = observed_restriction_keys(vm, sets)
        missing = observed - report.predicted_restricted
        assert not missing, (
            f"runtime restricts {sorted(missing)} but dsu-lint did not "
            f"predict them"
        )

    def test_bundled_aborts_are_the_predicted_ones(self):
        from repro.apps.registry import (
            APPS,
            EXPECTED_OSR_RESCUED,
            STATIC_PREDICTED_ABORTS,
            update_pairs,
        )
        from repro.harness.updates import AppDriver

        flagged = set()          # paper-fidelity pass (no osrmap rescue)
        flagged_default = set()  # default pass (osrmap pass on)
        rescued = set()          # fully-planned osrmap verdicts
        for app in APPS:
            info = APPS[app]
            driver = AppDriver(
                app, info.versions, info.main_class,
                transformer_overrides=info.transformer_overrides,
            )
            for from_version, to_version in update_pairs(app):
                prepared = driver.prepare_pair(from_version, to_version)
                fidelity = analyze_update(
                    driver.classfiles(from_version), prepared,
                    inloop_osr=False,
                )
                if fidelity.has_errors:
                    flagged.add((app, from_version, to_version))
                report = analyze_update(
                    driver.classfiles(from_version), prepared
                )
                if report.has_errors:
                    flagged_default.add((app, from_version, to_version))
                if report.osr_plans is not None and report.osr_plans.fully_planned:
                    rescued.add((app, from_version, to_version))
        # Without the rescue, errors land on exactly the paper's aborts.
        assert flagged == set(STATIC_PREDICTED_ABORTS)
        # With it, both are fully planned and no update errors at all.
        assert flagged_default == set()
        assert rescued == set(EXPECTED_OSR_RESCUED)
