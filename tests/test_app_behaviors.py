"""Deeper behavioural tests of the three applications — the features the
release histories introduce must actually work, version by version."""

import pytest

from repro.apps.crossftp.versions import MAIN_CLASS as FTP_MAIN
from repro.apps.crossftp.versions import TRANSFORMER_OVERRIDES as FTP_OVERRIDES
from repro.apps.crossftp.versions import VERSIONS as FTP_VERSIONS
from repro.apps.javaemail.versions import (
    MAIN_CLASS as JES_MAIN,
    POP3_PORT,
    SMTP_PORT,
    VERSIONS as JES_VERSIONS,
)
from repro.apps.jetty.versions import (
    HTTP_PORT,
    MAIN_CLASS as JETTY_MAIN,
    VERSIONS as JETTY_VERSIONS,
)
from repro.harness.updates import AppDriver
from repro.net.httpclient import HttpConnectionClient
from repro.net.loadgen import ScriptedSession
from repro.net.popclient import login_steps
from repro.net.smtpclient import send_mail_script


def jetty(version):
    return AppDriver("jetty", JETTY_VERSIONS, JETTY_MAIN).boot(version)


def jes(version):
    return AppDriver("javaemail", JES_VERSIONS, JES_MAIN).boot(version)


def ftp(version):
    return AppDriver(
        "crossftp", FTP_VERSIONS, FTP_MAIN, transformer_overrides=FTP_OVERRIDES
    ).boot(version)


class TestJettyFeatures:
    def test_515_resource_cache_hits(self):
        driver = jetty("5.1.5")
        clients = [
            HttpConnectionClient(driver.vm, HTTP_PORT, "/file.bin", 3).start(30 + i * 5)
            for i in range(3)
        ]
        driver.run(until_ms=2_000)
        assert all(c.succeeded for c in clients)
        stats = driver.vm.registry.get("ServerStats")
        hits = driver.vm.jtoc.read(stats.static_slots["cacheHits"])
        assert hits >= 8  # first read misses, the rest hit

    def test_515_bytes_served_accounting(self):
        driver = jetty("5.1.5")
        client = HttpConnectionClient(driver.vm, HTTP_PORT, "/file.bin", 4).start(30)
        driver.run(until_ms=2_000)
        assert client.succeeded
        stats = driver.vm.registry.get("ServerStats")
        served = driver.vm.jtoc.read(stats.static_slots["bytesServed"])
        assert served == 4 * 2048

    def test_512_content_type_header(self):
        driver = jetty("5.1.2")
        client = HttpConnectionClient(driver.vm, HTTP_PORT, "/index.html", 1).start(30)
        driver.run(until_ms=1_500)
        assert client.succeeded
        # Reach into the connection transcript via a fresh request with the
        # raw endpoint to check headers.
        endpoint = driver.vm.network.client_connect(HTTP_PORT)
        endpoint.send("GET /index.html HTTP/1.1\r\n\r\n")
        driver.run(until_ms=driver.vm.clock.now_ms + 200)
        response = endpoint.receive()
        assert "Content-Type: text/html" in response

    def test_516_server_header(self):
        driver = jetty("5.1.6")
        driver.run(until_ms=20)  # let the listener start
        endpoint = driver.vm.network.client_connect(HTTP_PORT)
        endpoint.send("GET /index.html HTTP/1.1\r\n\r\n")
        driver.run(until_ms=300)
        assert "Server: jetty" in endpoint.receive()

    def test_400_on_malformed_request_line(self):
        driver = jetty("5.1.1")
        driver.run(until_ms=20)  # let the listener start
        endpoint = driver.vm.network.client_connect(HTTP_PORT)
        endpoint.send("GARBAGE\r\n\r\n")
        driver.run(until_ms=400)
        assert "400" in endpoint.receive()

    def test_accept_counters_after_513(self):
        driver = jetty("5.1.4")
        client = HttpConnectionClient(driver.vm, HTTP_PORT, "/index.html", 1).start(30)
        driver.run(until_ms=1_500)
        assert client.succeeded
        # The 5.1.3-introduced accounting persists in later releases: the
        # acceptor counted the connection (instance field of the live
        # ThreadedServer object, visible via the thread's frame).
        server_thread = next(
            t for t in driver.vm.threads if "ThreadedServer" in t.name
        )
        this_address = server_thread.frames[0].locals[0]
        accepted = driver.vm.objects.read_field(this_address, "accepted")
        assert accepted == 1


class TestJavaEmailFeatures:
    def test_pop_dele_removes_message(self):
        driver = jes("1.2.1")
        smtp = ScriptedSession(
            driver.vm, SMTP_PORT,
            send_mail_script("bob@example.org", "alice@example.org", ["one"]),
        ).start(30)
        script = login_steps("alice", "apass") + [
            ("send", "STAT"),
            ("expect", "+OK 1"),
            ("send", "DELE 1"),
            ("expect", "+OK deleted"),
            ("send", "STAT"),
            ("expect", "+OK 0"),
            ("send", "QUIT"),
            ("expect", "+OK bye"),
            ("close",),
        ]
        pop = ScriptedSession(driver.vm, POP3_PORT, script).start(400)
        driver.run(until_ms=3_000)
        assert smtp.succeeded, smtp.failed
        assert pop.succeeded, pop.failed

    def test_pop_commands_require_login(self):
        driver = jes("1.2.1")
        script = [
            ("expect", "+OK jes pop3"),
            ("send", "STAT"),
            ("expect", "-ERR not logged in"),
            ("send", "QUIT"),
            ("expect", "+OK bye"),
            ("close",),
        ]
        session = ScriptedSession(driver.vm, POP3_PORT, script).start(30)
        driver.run(until_ms=1_500)
        assert session.succeeded, session.failed

    def test_134_rset_clears_envelope(self):
        driver = jes("1.3.4")
        script = [
            ("expect", "220"),
            ("send", "HELO c"),
            ("expect", "250"),
            ("send", "MAIL FROM:<a@example.org>"),
            ("expect", "250"),
            ("send", "RSET"),
            ("expect", "250 reset"),
            ("send", "QUIT"),
            ("expect", "221"),
            ("close",),
        ]
        session = ScriptedSession(driver.vm, SMTP_PORT, script).start(30)
        driver.run(until_ms=1_500)
        assert session.succeeded, session.failed

    def test_forward_chain_still_single_hop(self):
        # bob forwards to alice; mail to bob lands in both mailboxes (one
        # hop, no transitive explosion).
        driver = jes("1.2.1")
        smtp = ScriptedSession(
            driver.vm, SMTP_PORT,
            send_mail_script("carol@example.org", "bob@example.org", ["fwd"]),
        ).start(30)
        driver.run(until_ms=1_000)
        assert smtp.succeeded
        store = driver.vm.registry.get("MailStore")
        count = driver.vm.jtoc.read(store.static_slots["count"])
        assert count == 2  # bob's copy + alice's forwarded copy


class TestCrossFtpFeatures:
    def test_cwd_changes_pwd(self):
        driver = ftp("1.07")
        script = [
            ("expect", "220"),
            ("send", "USER alice"),
            ("expect", "331"),
            ("send", "PASS xyzzy"),
            ("expect", "230"),
            ("send", "CWD /uploads"),
            ("expect", "250"),
            ("send", "PWD"),
            ("expect", "/uploads"),
            ("send", "QUIT"),
            ("expect", "221"),
            ("close",),
        ]
        session = ScriptedSession(driver.vm, 2121, script).start(30)
        driver.run(until_ms=1_500)
        assert session.succeeded, session.failed

    def test_108_command_cap_closes_session(self):
        driver = ftp("1.08")
        # Push the handler past the 1000-command session cap.
        steps = [("expect", "220")]
        for _ in range(1001):
            steps.append(("send", "NOOP"))
        steps.append(("expect", "421"))
        session = ScriptedSession(
            driver.vm, 2121, steps, poll_ms=1.0, timeout_ms=60_000
        ).start(20)
        driver.run(until_ms=20_000)
        # The server sent the 421 cap notice and closed.
        transcript = "\n".join(session.transcript)
        assert "421 session command limit" in transcript

    def test_stats_visible_across_versions(self):
        driver = ftp("1.07")
        from repro.net.ftpclient import browse_script

        session = ScriptedSession(driver.vm, 2121, browse_script()).start(20)
        driver.run(until_ms=1_500)
        assert session.succeeded
        stats = driver.vm.registry.get("Stats")
        assert driver.vm.jtoc.read(stats.static_slots["logins"]) == 1
        assert driver.vm.jtoc.read(stats.static_slots["bytesOut"]) > 0
