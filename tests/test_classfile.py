"""Unit tests for class files: serialization, hashing, diff helpers, the
disassembler and the classloader's error paths."""

import pytest

from repro.bytecode.classfile import ClassFile, MethodInfo
from repro.bytecode.disassembler import disassemble_class, disassemble_method
from repro.bytecode.instructions import Instr, referenced_classes
from repro.compiler.compile import compile_source
from repro.compiler.jastadd import compile_transformers
from repro.vm.classloader import ClassLoadError
from repro.vm.vm import VM

SOURCE = """
class Point {
    int x;
    static int made;
    Point(int x0) { this.x = x0; Point.made = Point.made + 1; }
    int getX() { return x; }
    string tag() { return "p" + x; }
}
class Main { static void main() { Sys.print("" + new Point(3).getX()); } }
"""


@pytest.fixture(scope="module")
def classfiles():
    return compile_source(SOURCE, version="t1")


class TestSerialization:
    def test_json_roundtrip_preserves_everything(self, classfiles):
        point = classfiles["Point"]
        restored = ClassFile.from_json(point.to_json())
        assert restored.name == point.name
        assert restored.superclass == point.superclass
        assert restored.field_signature() == point.field_signature()
        assert restored.method_signatures() == point.method_signatures()
        assert restored.source_version == "t1"

    def test_roundtrip_preserves_tuple_operands(self, classfiles):
        main = classfiles["Main"]
        restored = ClassFile.from_json(main.to_json())
        method = restored.get_method("main", "()V")
        invokes = [i for i in method.instructions if i.op.startswith("INVOKE")]
        assert invokes and all(isinstance(i.b, tuple) for i in invokes)

    def test_roundtripped_program_still_runs(self, classfiles):
        restored = {
            name: ClassFile.from_json(cf.to_json()) for name, cf in classfiles.items()
        }
        vm = VM()
        vm.boot(restored)
        vm.start_main("Main")
        vm.run(max_instructions=100_000)
        assert vm.console == ["3"]


class TestHashing:
    def test_hash_stable_across_compilations(self):
        first = compile_source(SOURCE)["Point"].method_signatures()
        second = compile_source(SOURCE)["Point"].method_signatures()
        assert first == second

    def test_hash_changes_with_body(self):
        changed = SOURCE.replace("return x;", "return x + 1;")
        first = compile_source(SOURCE)["Point"]
        second = compile_source(changed)["Point"]
        key = ("getX", "()I")
        assert first.method_signatures()[key] != second.method_signatures()[key]

    def test_hash_unaffected_by_sibling_method_edits(self):
        # The bug class CONST_STR-by-pool-index would have caused: editing
        # one method's literals must not change another method's hash.
        changed = SOURCE.replace('return "p" + x;', 'return "point-" + x;')
        first = compile_source(SOURCE)["Point"]
        second = compile_source(changed)["Point"]
        key = ("getX", "()I")
        assert first.method_signatures()[key] == second.method_signatures()[key]

    def test_native_methods_hash_empty(self):
        from repro.compiler.compile import compile_prelude

        sys_cf = compile_prelude()["Sys"]
        signatures = sys_cf.method_signatures()
        for key, method in sys_cf.methods.items():
            if method.is_native:
                assert signatures[key] == ""
            else:
                assert signatures[key] != ""  # the implicit constructor


class TestReferencedClasses:
    def test_layout_sensitive_ops_counted(self, classfiles):
        method = classfiles["Point"].get_method("getX", "()I")
        assert "Point" in method.referenced_classes()

    def test_static_calls_not_layout_sensitive(self):
        instructions = [Instr("INVOKESTATIC", "Util", ("f", "()V")), Instr("RETURN")]
        assert referenced_classes(instructions) == frozenset()

    def test_new_is_layout_sensitive(self):
        instructions = [Instr("NEW", "Widget"), Instr("POP"), Instr("RETURN")]
        assert referenced_classes(instructions) == frozenset({"Widget"})


class TestDisassembler:
    def test_method_listing(self, classfiles):
        listing = disassemble_method(classfiles["Point"].get_method("getX", "()I"))
        assert "getX()I" in listing
        assert "GETFIELD" in listing
        assert "RETURN_VALUE" in listing

    def test_class_listing(self, classfiles):
        listing = disassemble_class(classfiles["Point"])
        assert "class Point extends Object" in listing
        assert "x: I" in listing
        assert "<init>" in listing


class TestClassLoader:
    def test_duplicate_load_rejected(self, classfiles):
        vm = VM()
        vm.boot(classfiles)
        with pytest.raises(ClassLoadError, match="already loaded"):
            vm.loader.load(dict(compile_source(SOURCE)))

    def test_missing_superclass_rejected(self):
        orphan = ClassFile("Orphan", "Ghost")
        vm = VM()
        vm.boot({})
        with pytest.raises(ClassLoadError, match="unloaded class"):
            vm.loader.load({"Orphan": orphan})

    def test_transformer_flag_blocks_normal_load(self):
        transformers = compile_transformers(
            "class JvolveTransformers { static void nop() { } }"
        )
        vm = VM()
        vm.boot({})
        with pytest.raises(ClassLoadError, match="access-override"):
            vm.loader.load(transformers)
        # ...but the DSU path may load it explicitly.
        vm.loader.load(transformers, allow_access_override=True)

    def test_clinit_runs_at_load(self):
        vm = VM()
        vm.boot(compile_source("class C { static int x = 41; }"))
        c = vm.registry.get("C")
        assert vm.jtoc.read(c.static_slots["x"]) == 41

    def test_superclass_ordering_automatic(self):
        source = ("class B extends A { int b; } class A { int a; } "
                  "class C extends B { int c; }")
        vm = VM()
        vm.boot(compile_source(source))
        c = vm.registry.get("C")
        assert [f.name for f in c.field_layout] == ["a", "b", "c"]
