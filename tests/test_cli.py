"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import main

V1 = """
class Greeter { static string greet() { return "v1"; } }
class Main {
    static int rounds;
    static void main() {
        while (rounds < 10) {
            Sys.print(Greeter.greet());
            Sys.sleep(10);
            rounds = rounds + 1;
        }
    }
}
"""
V2 = V1.replace('return "v1";', 'return "v2";')


@pytest.fixture
def program_files(tmp_path):
    old = tmp_path / "old.jm"
    new = tmp_path / "new.jm"
    old.write_text(V1)
    new.write_text(V2)
    return str(old), str(new)


class TestRun:
    def test_run_prints_console(self, program_files, capsys):
        old, _ = program_files
        assert main(["run", old, "--until-ms", "500"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert out == ["v1"] * 10

    def test_run_reports_traps(self, tmp_path, capsys):
        bad = tmp_path / "bad.jm"
        bad.write_text(
            "class Main { static void main() { int z = 0; int x = 1 / z; } }"
        )
        assert main(["run", str(bad)]) == 1
        assert "division" in capsys.readouterr().err


class TestDisasm:
    def test_disasm_lists_bytecode(self, program_files, capsys):
        old, _ = program_files
        assert main(["disasm", old, "--class-name", "Greeter"]) == 0
        out = capsys.readouterr().out
        assert "class Greeter" in out
        assert "CONST_STR 'v1'" in out

    def test_disasm_unknown_class(self, program_files, capsys):
        old, _ = program_files
        assert main(["disasm", old, "--class-name", "Nope"]) == 1


class TestDiff:
    def test_diff_reports_classification(self, program_files, capsys):
        old, new = program_files
        assert main(["diff", old, new]) == 0
        out = capsys.readouterr().out
        assert "body-changed 1" in out
        assert "method-body-only systems: yes" in out


class TestUpdate:
    def test_update_applies_and_switches_output(self, program_files, capsys):
        old, new = program_files
        code = main(["update", old, new, "--at", "45", "--until-ms", "2000"])
        captured = capsys.readouterr()
        assert code == 0
        lines = captured.out.splitlines()
        assert "v1" in lines and "v2" in lines
        assert "[update] applied" in captured.err

    def test_update_trace_out_writes_chrome_trace(self, program_files,
                                                  tmp_path, capsys):
        import json

        old, new = program_files
        trace_path = tmp_path / "update.trace.json"
        code = main(["update", old, new, "--at", "45", "--until-ms", "2000",
                     "--trace-out", str(trace_path)])
        assert code == 0
        assert "[trace] wrote" in capsys.readouterr().err
        trace = json.loads(trace_path.read_text())
        names = {e["name"] for e in trace["traceEvents"]}
        assert "dsu.update" in names
        # A body-only update has an empty transform map, so the engine
        # skips the update collection and marks the trace instead.
        assert "gc.collect" not in names
        assert "dsu.gc.skipped" in names
        assert trace["otherData"]["metrics"]["counters"]["dsu.updates_applied"] == 1

    def test_update_with_transformer_overrides_file(self, tmp_path, capsys):
        v1 = tmp_path / "a.jm"
        v2 = tmp_path / "b.jm"
        v1.write_text("""
class State { int level; }
class Keep { static State s; }
class Main {
    static int rounds;
    static void main() {
        Keep.s = new State();
        Keep.s.level = 3;
        while (rounds < 20) { Sys.sleep(10); rounds = rounds + 1; }
        Sys.print("" + Show.text());
    }
}
class Show { static string text() { return "L" + Keep.s.level; } }
""")
        v2.write_text("""
class State { int level; int stars; }
class Keep { static State s; }
class Main {
    static int rounds;
    static void main() {
        Keep.s = new State();
        Keep.s.level = 3;
        while (rounds < 20) { Sys.sleep(10); rounds = rounds + 1; }
        Sys.print("" + Show.text());
    }
}
class Show { static string text() { return "L" + Keep.s.level + "*" + Keep.s.stars; } }
""")
        transformers = tmp_path / "trans.jvt"
        transformers.write_text("""=== State
    static void jvolveClass(State unused) { }
    static void jvolveObject(State to, v10_State from) {
        to.level = from.level;
        to.stars = from.level * 10;
    }
""")
        code = main([
            "update", str(v1), str(v2), "--at", "45", "--until-ms", "2000",
            "--transformers", str(transformers),
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "L3*30" in captured.out

    def test_update_abort_exit_code(self, tmp_path, capsys):
        v1 = tmp_path / "s1.jm"
        v2 = tmp_path / "s2.jm"
        v1.write_text("""
class Loop { static int n; static void spin() { while (true) { Sys.sleep(5); n = n + 1; if (n > 500) { Sys.halt(); } } } }
class Main { static void main() { Loop.spin(); } }
""")
        v2.write_text(v1.read_text().replace("n = n + 1;", "n = n + 2;"))
        code = main([
            "update", str(v1), str(v2), "--at", "20",
            "--timeout-ms", "200", "--until-ms", "1500",
            "--inloop-osr", "off",
        ])
        captured = capsys.readouterr()
        assert code == 1
        assert "aborted" in captured.err

    def test_update_inloop_osr_rescues_the_spinner(self, tmp_path, capsys):
        # Same doomed pair, but with the default in-loop OSR rescue on the
        # engine remaps the spinning frame instead of aborting.
        v1 = tmp_path / "s1.jm"
        v2 = tmp_path / "s2.jm"
        v1.write_text("""
class Loop { static int n; static void spin() { while (true) { Sys.sleep(5); n = n + 1; if (n > 500) { Sys.halt(); } } } }
class Main { static void main() { Loop.spin(); } }
""")
        v2.write_text(v1.read_text().replace("n = n + 1;", "n = n + 2;"))
        code = main([
            "update", str(v1), str(v2), "--at", "20",
            "--timeout-ms", "200", "--until-ms", "1500",
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "[update] applied" in captured.err
        assert "will OSR" in captured.err

    def test_update_strict_lint_refuses_doomed_update(self, tmp_path, capsys):
        v1 = tmp_path / "s1.jm"
        v2 = tmp_path / "s2.jm"
        v1.write_text("""
class Loop { static int n; static void spin() { while (true) { Sys.sleep(5); n = n + 1; } } }
class Main { static void main() { Loop.spin(); } }
""")
        v2.write_text(v1.read_text().replace("n = n + 1;", "n = n + 2;"))
        code = main([
            "update", str(v1), str(v2), "--at", "20",
            "--timeout-ms", "200", "--until-ms", "1500",
            "--dsu-lint", "strict", "--inloop-osr", "off",
        ])
        captured = capsys.readouterr()
        assert code == 1
        assert "phase=preflight" in captured.err
        assert "lint-rejected" in captured.err
        assert "dsu-lint" in captured.err


SPIN_V1 = """
class Loop {
    static int n;
    static void spin() { while (true) { Sys.sleep(5); n = n + 1; } }
}
class Main { static void main() { Loop.spin(); } }
"""


@pytest.fixture
def doomed_files(tmp_path):
    old = tmp_path / "spin1.jm"
    new = tmp_path / "spin2.jm"
    old.write_text(SPIN_V1)
    new.write_text(SPIN_V1.replace("n + 1", "n + 2"))
    return str(old), str(new)


class TestDsuLint:
    def test_clean_pair_exits_zero(self, program_files, capsys):
        old, new = program_files
        assert main(["dsu-lint", old, new]) == 0
        out = capsys.readouterr().out
        assert "dsu-lint 1.0 -> 2.0" in out
        assert "no statically-detectable blocker" in out

    def test_doomed_pair_exits_nonzero_with_suggestion(self, doomed_files,
                                                       capsys):
        # Paper-fidelity mode: without the osrmap pass the spinner is a
        # hard predicted abort.
        old, new = doomed_files
        assert main(["dsu-lint", old, new, "--paper-fidelity"]) == 1
        out = capsys.readouterr().out
        assert "DSU-SP01" in out
        assert "blacklist Loop.spin()V" in out
        assert "predicted to ABORT (safepoint/timeout)" in out

    def test_doomed_pair_is_planned_by_default(self, doomed_files, capsys):
        # Default mode: the osrmap pass proves a remap for the spinner, the
        # DSU-SP01 error downgrades to a "will OSR" warning, and the
        # verdict flips to "lands".
        old, new = doomed_files
        assert main(["dsu-lint", old, new]) == 0
        out = capsys.readouterr().out
        assert "will OSR (plan verified" in out
        assert "DSU-OM00" in out
        assert "predicted to ABORT" not in out

    def test_json_output_is_machine_readable(self, doomed_files, capsys):
        import json

        old, new = doomed_files
        assert main(["dsu-lint", old, new, "--json", "--paper-fidelity"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["update"] == "1.0->2.0"
        assert payload["predicted_abort"] == "safepoint/timeout"
        assert payload["errors"] >= 1
        assert any(
            d["code"] == "DSU-SP01" for d in payload["diagnostics"]
        )
        assert "Loop.spin()V" in payload["predicted_restricted"]

    def test_json_output_carries_osr_plans_by_default(self, doomed_files,
                                                      capsys):
        import json

        old, new = doomed_files
        assert main(["dsu-lint", old, new, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["predicted_abort"] == ""
        assert payload["errors"] == 0
        plans = payload["osr_plans"]
        assert plans["fully_planned"]
        assert ["Loop", "spin", "()V"] in [
            p["method"] for p in plans["plans"]
        ]
        assert not plans["refusals"]

    def test_app_pair_mode_finds_the_jetty_abort(self, capsys):
        code = main([
            "dsu-lint", "--app", "jetty",
            "--from-version", "5.1.2", "--to-version", "5.1.3",
            "--paper-fidelity",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "jetty 5.1.2->5.1.3" in out
        assert "DSU-SP01" in out
        assert "PoolThread.run" in out

    def test_app_pair_mode_plans_the_jetty_rescue(self, capsys):
        code = main([
            "dsu-lint", "--app", "jetty",
            "--from-version", "5.1.2", "--to-version", "5.1.3",
            "--osr-plan",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "PoolThread.run" in out
        assert "plan verified" in out

    def test_check_expected_accepts_a_predicted_abort(self, capsys):
        code = main([
            "dsu-lint", "--app", "jetty",
            "--from-version", "5.1.2", "--to-version", "5.1.3",
            "--check-expected", "--json",
        ])
        assert code == 0

    def test_usage_error_without_inputs(self, capsys):
        assert main(["dsu-lint"]) == 2
        assert "needs either" in capsys.readouterr().err


class TestDsuLintMinimization:
    """--explain / --superset-gate / --sizes-out on the semantic-diff
    minimizer's flagship update (javaemail 1.3.1->1.3.2, the paper's
    Figure-3 example)."""

    JE_PAIR = ["dsu-lint", "--app", "javaemail",
               "--from-version", "1.3.1", "--to-version", "1.3.2"]

    def test_explain_escaped_category2_method(self, capsys):
        assert main(self.JE_PAIR + ["--explain", "Pop3Processor.run"]) == 0
        out = capsys.readouterr().out
        assert "Pop3Processor.run()V" in out
        assert "category-2 escape" in out
        assert "keeps flattened slot" in out

    def test_explain_restricted_method_shows_stale_site(self, capsys):
        assert main(self.JE_PAIR + ["--explain", "SMTPSender.run"]) == 0
        out = capsys.readouterr().out
        assert "category 2 (restricted)" in out
        assert "STALE" in out
        assert "forwardAddresses" in out

    def test_explain_unknown_method(self, capsys):
        assert main(self.JE_PAIR + ["--explain", "Nope.missing"]) == 0
        assert "no method matching" in capsys.readouterr().out

    def test_superset_gate_and_sizes_out(self, tmp_path, capsys):
        import json

        sizes = tmp_path / "sizes.json"
        code = main([
            "dsu-lint", "--app", "jetty",
            "--from-version", "5.1.1", "--to-version", "5.1.2",
            "--superset-gate", "--sizes-out", str(sizes), "--json",
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "shrank on 1 of 1" in captured.err
        (row,) = json.loads(sizes.read_text())
        assert row["superset_gate"] == "ok"
        assert row["restricted_after"] < row["restricted_before"]
        assert row["escaped_category2"] >= 1

    def test_superset_gate_requires_app_mode(self, program_files, capsys):
        old, new = program_files
        assert main(["dsu-lint", old, new, "--superset-gate"]) == 2
        assert "--superset-gate needs" in capsys.readouterr().err


class TestTrace:
    def test_trace_bundled_update_writes_artifact(self, tmp_path, capsys,
                                                  monkeypatch):
        import json

        monkeypatch.chdir(tmp_path)
        code = main(["trace", "--app", "crossftp", "--update", "1.07-1.08",
                     "--spans", "--min-span-ms", "0.05"])
        captured = capsys.readouterr()
        assert code == 0
        assert "Per-update pause breakdown" in captured.out
        assert "dsu.update" in captured.out  # --spans tree
        trace_path = tmp_path / "crossftp-1.07-1.08.trace.json"
        assert trace_path.exists()
        trace = json.loads(trace_path.read_text())
        names = {e["name"] for e in trace["traceEvents"]}
        assert {"dsu.update", "dsu.safepoint.scan", "dsu.classload",
                "gc.collect"} <= names

    def test_trace_rejects_unknown_app_and_pair(self, capsys):
        assert main(["trace", "--app", "nope", "--update", "1-2"]) == 2
        assert "unknown app" in capsys.readouterr().err
        assert main(["trace", "--app", "jetty", "--update", "9.9-9.8"]) == 2
        assert "unknown update" in capsys.readouterr().err
