"""Integration tests: compiler output passes the bytecode verifier, and the
verifier rejects malformed bytecode."""

import pytest

from repro.bytecode.classfile import ClassFile, MethodInfo
from repro.bytecode.instructions import Instr
from repro.bytecode.verifier import (
    ClassTable,
    Verifier,
    VerifyError,
    verify_classfiles,
)
from repro.compiler.compile import compile_prelude, compile_source
from repro.compiler.jastadd import compile_transformers, has_access_override


def compile_and_verify(source, **kwargs):
    classfiles = dict(compile_prelude())
    classfiles.update(compile_source(source, **kwargs))
    return classfiles, verify_classfiles(classfiles)


SIMPLE_PROGRAM = """
class Point {
    int x;
    int y;
    Point(int x0, int y0) { this.x = x0; this.y = y0; }
    int dist2() { return x * x + y * y; }
}
class Main {
    static void main() {
        Point p = new Point(3, 4);
        Sys.print("d2=" + p.dist2());
    }
}
"""


class TestCompiledCodeVerifies:
    def test_simple_program(self):
        compile_and_verify(SIMPLE_PROGRAM)

    def test_control_flow(self):
        compile_and_verify(
            """
            class Main {
                static int collatz(int n) {
                    int steps = 0;
                    while (n != 1) {
                        if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
                        steps = steps + 1;
                    }
                    return steps;
                }
            }
            """
        )

    def test_for_loop_with_break_continue(self):
        compile_and_verify(
            """
            class Main {
                static int f() {
                    int total = 0;
                    for (int i = 0; i < 100; i = i + 1) {
                        if (i % 3 == 0) { continue; }
                        if (i > 50) { break; }
                        total = total + i;
                    }
                    return total;
                }
            }
            """
        )

    def test_strings_and_arrays(self):
        compile_and_verify(
            """
            class Main {
                static string join(string[] parts, string sep) {
                    string result = "";
                    for (int i = 0; i < parts.length; i = i + 1) {
                        if (i > 0) { result = result + sep; }
                        result = result + parts[i];
                    }
                    return result;
                }
                static void main() {
                    string[] parts = "a@b@c".split("@");
                    Sys.print(join(parts, "-"));
                }
            }
            """
        )

    def test_inheritance_and_virtual_dispatch(self):
        compile_and_verify(
            """
            class Shape { int area() { return 0; } }
            class Square extends Shape {
                int side;
                Square(int s) { this.side = s; }
                int area() { return side * side; }
            }
            class Main {
                static int total(Shape[] shapes) {
                    int sum = 0;
                    for (int i = 0; i < shapes.length; i = i + 1) {
                        sum = sum + shapes[i].area();
                    }
                    return sum;
                }
            }
            """
        )

    def test_logical_short_circuit(self):
        compile_and_verify(
            """
            class Main {
                static bool both(bool a, bool b) { return a && b || !a; }
            }
            """
        )

    def test_casts_and_instanceof(self):
        compile_and_verify(
            """
            class A { int tag() { return 0; } }
            class B extends A { int extra; int tag() { return 1; } }
            class Main {
                static int f(A a) {
                    if (a instanceof B) { B b = (B)a; return b.extra; }
                    return a.tag();
                }
            }
            """
        )

    def test_static_fields_and_clinit(self):
        classfiles, _ = compile_and_verify(
            """
            class Config { static int port = 8080; static string host = "x"; }
            """
        )
        assert classfiles["Config"].get_method("<clinit>", "()V") is not None

    def test_field_initializers_compiled_into_ctor(self):
        classfiles, _ = compile_and_verify(
            """
            class C { int x = 41; C() { this.x = this.x + 1; } }
            """
        )
        ctor = classfiles["C"].get_method("<init>", "()V")
        ops = [i.op for i in ctor.instructions]
        assert "PUTFIELD" in ops

    def test_super_constructor_chain(self):
        compile_and_verify(
            """
            class A { int x; A(int x0) { this.x = x0; } }
            class B extends A { int y; B() { super(10); this.y = 2; } }
            """
        )

    def test_string_comparisons(self):
        compile_and_verify(
            """
            class Main {
                static bool eq(string a, string b) { return a == b; }
                static bool isNull(string a) { return a == null; }
            }
            """
        )

    def test_while_true_loop(self):
        compile_and_verify(
            """
            class Main {
                static void serve() {
                    while (true) { Sys.yield(); }
                }
            }
            """
        )


class TestVerifierRejectsBadBytecode:
    def _table(self):
        return ClassTable(compile_prelude())

    def _method(self, instructions, descriptor="()V", max_locals=0, is_static=True):
        return MethodInfo("m", descriptor, is_static, False, "public", max_locals,
                          [Instr(*i) if isinstance(i, tuple) else i for i in instructions])

    def _verify(self, method):
        Verifier(self._table()).verify_method("Object", method)

    def test_stack_underflow(self):
        with pytest.raises(VerifyError, match="underflow"):
            self._verify(self._method([("POP",), ("RETURN",)]))

    def test_fall_off_end(self):
        with pytest.raises(VerifyError, match="fall off"):
            self._verify(self._method([("CONST_INT", 1), ("POP",)]))

    def test_branch_out_of_range(self):
        with pytest.raises(VerifyError, match="target"):
            self._verify(self._method([("JUMP", 99)]))

    def test_type_confusion_add_on_string(self):
        with pytest.raises(VerifyError, match="expected int"):
            self._verify(
                self._method(
                    [("CONST_STR", "lit"), ("CONST_INT", 1), ("ADD",), ("POP",), ("RETURN",)]
                )
            )

    def test_uninitialized_local_load(self):
        with pytest.raises(VerifyError, match="uninitialized"):
            self._verify(self._method([("LOAD", 0), ("POP",), ("RETURN",)], max_locals=1))

    def test_slot_type_conflict(self):
        with pytest.raises(VerifyError, match="conflicting"):
            self._verify(
                self._method(
                    [
                        ("CONST_INT", 1),
                        ("STORE", 0),
                        ("CONST_STR", "lit"),
                        ("STORE", 0),
                        ("RETURN",),
                    ],
                    max_locals=1,
                )
            )

    def test_stack_depth_mismatch_at_merge(self):
        # Path A pushes one value before the join, path B pushes none.
        with pytest.raises(VerifyError, match="depth mismatch"):
            self._verify(
                self._method(
                    [
                        ("CONST_BOOL", True),   # 0
                        ("JUMP_IF_FALSE", 3),   # 1
                        ("CONST_INT", 7),       # 2 -> falls into 3 with depth 1
                        ("RETURN",),            # 3 (depth 0 via jump, 1 via fall)
                    ]
                )
            )

    def test_return_value_in_void_method(self):
        with pytest.raises(VerifyError, match="RETURN_VALUE in void"):
            self._verify(self._method([("CONST_INT", 1), ("RETURN_VALUE",)]))

    def test_wrong_return_type(self):
        with pytest.raises(VerifyError, match="cannot return"):
            self._verify(
                self._method([("CONST_STR", "lit"), ("RETURN_VALUE",)], descriptor="()I")
            )

    def test_unknown_field(self):
        with pytest.raises(VerifyError, match="unknown field"):
            self._verify(
                self._method([("GETSTATIC", "Object", "nope"), ("POP",), ("RETURN",)])
            )

    def test_unknown_method(self):
        with pytest.raises(VerifyError, match="unknown method"):
            self._verify(
                self._method(
                    [("INVOKESTATIC", "Sys", ("nope", "()V")), ("RETURN",)]
                )
            )

    def test_unknown_class_in_new(self):
        with pytest.raises(VerifyError, match="unknown class"):
            self._verify(self._method([("NEW", "Ghost"), ("POP",), ("RETURN",)]))


class TestAccessEnforcementAtBytecodeLevel:
    def _classfiles(self):
        source = """
        class Secret {
            private int code;
            final int version;
            Secret() { this.version = 1; }
        }
        """
        classfiles = dict(compile_prelude())
        classfiles.update(compile_source(source))
        return classfiles

    def _attacker(self, instructions, max_locals=1):
        attacker = ClassFile("Attacker", "Object")
        attacker.add_method(
            MethodInfo(
                "steal", "(LSecret;)V", True, False, "public", max_locals,
                [Instr(*i) for i in instructions],
            )
        )
        return attacker

    def test_private_field_access_rejected(self):
        classfiles = self._classfiles()
        attacker = self._attacker(
            [("LOAD", 0), ("GETFIELD", "Secret", "code"), ("POP",), ("RETURN",)]
        )
        classfiles["Attacker"] = attacker
        table = ClassTable(classfiles)
        with pytest.raises(VerifyError, match="private"):
            Verifier(table).verify_class(attacker)

    def test_final_store_rejected_outside_init(self):
        classfiles = self._classfiles()
        attacker = self._attacker(
            [("LOAD", 0), ("CONST_INT", 9), ("PUTFIELD", "Secret", "version"), ("RETURN",)]
        )
        classfiles["Attacker"] = attacker
        table = ClassTable(classfiles)
        with pytest.raises(VerifyError, match="final"):
            Verifier(table).verify_class(attacker)

    def test_access_override_allows_both(self):
        classfiles = self._classfiles()
        attacker = self._attacker(
            [
                ("LOAD", 0),
                ("GETFIELD", "Secret", "code"),
                ("POP",),
                ("LOAD", 0),
                ("CONST_INT", 9),
                ("PUTFIELD", "Secret", "version"),
                ("RETURN",),
            ]
        )
        classfiles["Attacker"] = attacker
        table = ClassTable(classfiles)
        Verifier(table, access_override=True).verify_class(attacker)

    def test_jastadd_mode_compiles_access_violations(self):
        # The transformer compiler accepts source that touches private and
        # final fields of other classes, and tags the class file.
        source = """
        class Holder { private final int secret; Holder() { this.secret = 1; } }
        class JvolveTransformers {
            static void poke(Holder h) { h.secret = 42; }
        }
        """
        classfiles = compile_transformers(source)
        assert has_access_override(classfiles["JvolveTransformers"])
        full = dict(compile_prelude())
        full.update(classfiles)
        verify_classfiles(full, access_override=True)
        with pytest.raises(VerifyError):
            verify_classfiles(full, access_override=False)


class TestStackMaps:
    def test_reference_map_at_call_site(self):
        """Mid-expression call: the caller's operand stack holds a reference
        that the GC must treat as a root (paper §3.4 stack maps)."""
        source = """
        class Pair {
            Pair left;
            Pair(Pair l) { this.left = l; }
        }
        class Main {
            static Pair make() { return new Pair(new Pair(null)); }
        }
        """
        classfiles = dict(compile_prelude())
        classfiles.update(compile_source(source))
        verified = verify_classfiles(classfiles)
        make = verified["Main"][("make", "()LPair;")]
        # Find the inner INVOKESPECIAL; the outer Pair ref sits on the stack.
        instructions = make.method.instructions
        call_pcs = [
            pc for pc, i in enumerate(instructions) if i.op == "INVOKESPECIAL"
        ]
        inner_call = call_pcs[0]
        _, stack_refs = make.stack_map_at(inner_call).reference_map()
        assert any(stack_refs), "expected a live reference on the operand stack"

    def test_local_reference_map(self):
        source = """
        class Main {
            static int f() {
                string s = "hello";
                int n = 1;
                return n + s.length();
            }
        }
        """
        classfiles = dict(compile_prelude())
        classfiles.update(compile_source(source))
        verified = verify_classfiles(classfiles)
        f = verified["Main"][("f", "()I")]
        final_pcs = [
            pc for pc, i in enumerate(f.method.instructions) if i.op == "RETURN_VALUE"
        ]
        locals_refs, _ = f.stack_map_at(final_pcs[0]).reference_map()
        assert locals_refs[0] is True   # s
        assert locals_refs[1] is False  # n
