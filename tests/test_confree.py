"""Con-freeness verdicts and the zero-pause immediate-bypass path.

Three layers: unit tests for every CF rule on synthetic programs, the
22-update bundled sweep (the verdicts must match the registry's
bypass-eligible set exactly, including adversarial mutants of a
bypass-eligible update), and dynamic tests of the engine's bypass apply
mode — zero pause, unchanged app behavior, stale-frame draining, and
held-transaction commit/rollback.
"""

import pytest

from repro.analysis.confree import (
    RULE_CHANGED_REACHES_CHANGED,
    RULE_CLOSURE_RESOLVED,
    RULE_NO_BLACKLIST,
    RULE_NO_CLASS_SET_CHANGE,
    RULE_NO_CLASS_UPDATES,
    RULE_NO_CLINIT_CHANGE,
    RULE_NO_METHOD_SET_CHANGE,
    RULE_NONEMPTY,
    VERDICT_BYPASS,
    VERDICT_SAFEPOINT,
    classify_update,
)
from repro.apps.registry import APPS, EXPECTED_BYPASS_ELIGIBLE, update_pairs
from repro.dsu.engine import UpdateRequest
from repro.dsu.policy import UpdatePolicy
from repro.dsu.safepoint import RetryPolicy
from repro.dsu.specification import REASON_NOT_CON_FREE
from repro.harness.updates import AppDriver

from tests.dsu_helpers import UpdateFixture


BASE = """
class Greeter { static string greet() { return "v1"; } }
class Helper { static int twice(int x) { return x + x; } }
class Main {
    static int rounds;
    static void main() {
        while (rounds < 40) {
            Sys.print(Greeter.greet());
            Sys.sleep(10);
            rounds = rounds + 1;
        }
    }
}
"""

BASE_V2 = BASE.replace('return "v1";', 'return "v2";')


def verdict_for(v1_source, v2_source, blacklist=()):
    fixture = UpdateFixture(v1_source)
    prepared = fixture.prepare(v2_source, blacklist=blacklist)
    return classify_update(fixture.classfiles["1.0"], prepared)


def violated(verdict):
    return {step.rule for step in verdict.violations()}


# ---------------------------------------------------------------------------
# unit tests: one per rule


class TestShapeRules:
    def test_body_only_update_is_bypass_eligible(self):
        verdict = verdict_for(BASE, BASE_V2)
        assert verdict.eligible
        assert verdict.verdict == VERDICT_BYPASS
        assert verdict.violations() == []

    def test_field_added_violates_shape01(self):
        v2 = BASE_V2.replace("class Greeter {", "class Greeter { int pad;")
        verdict = verdict_for(BASE, v2)
        assert not verdict.eligible
        assert RULE_NO_CLASS_UPDATES in violated(verdict)
        assert any(step.subject == "Greeter" and not step.ok
                   for step in verdict.steps)

    def test_class_added_violates_shape02(self):
        verdict = verdict_for(BASE, BASE_V2 + "\nclass Extra { int x; }\n")
        assert RULE_NO_CLASS_SET_CHANGE in violated(verdict)

    def test_method_added_violates_shape03(self):
        v2 = BASE_V2.replace(
            "class Greeter {",
            "class Greeter { static int more() { return 3; }",
        )
        verdict = verdict_for(BASE, v2)
        assert RULE_NO_METHOD_SET_CHANGE in violated(verdict)

    def test_method_deleted_violates_shape03(self):
        v2 = BASE_V2.replace(
            "class Helper { static int twice(int x) { return x + x; } }",
            "class Helper { }",
        )
        verdict = verdict_for(BASE, v2)
        assert RULE_NO_METHOD_SET_CHANGE in violated(verdict)
        assert any("Helper.twice" in step.subject and not step.ok
                   for step in verdict.steps)

    def test_signature_change_is_not_bypass_eligible(self):
        v2 = BASE_V2.replace(
            "static int twice(int x) { return x + x; }",
            "static int twice(int x, int y) { return x + y; }",
        )
        verdict = verdict_for(BASE, v2)
        # A changed descriptor is a delete+add pair: both sides of
        # CF-SHAPE03 fire.
        assert RULE_NO_METHOD_SET_CHANGE in violated(verdict)

    def test_blacklist_violates_shape05(self):
        verdict = verdict_for(
            BASE, BASE_V2, blacklist=[("Helper", "twice", "(I)I")]
        )
        assert RULE_NO_BLACKLIST in violated(verdict)

    def test_clinit_change_violates_shape06(self):
        v1 = BASE.replace("class Main {", "class Main { static int seed = 5;")
        v2 = v1.replace('return "v1";', 'return "v2";').replace(
            "static int seed = 5;", "static int seed = 6;"
        )
        verdict = verdict_for(v1, v2)
        assert RULE_NO_CLINIT_CHANGE in violated(verdict)

    def test_empty_update_violates_shape07(self):
        verdict = verdict_for(BASE, BASE)
        assert not verdict.eligible
        assert RULE_NONEMPTY in violated(verdict)


CALLS = """
class Work {
    static int outer(int n) { return Work.inner(n) + 1; }
    static int inner(int n) { return n + 1; }
}
class Main { static void main() { Sys.print("" + Work.outer(1)); } }
"""


class TestCallGraphRules:
    def test_changed_method_calling_changed_method_violates_call01(self):
        v2 = CALLS.replace("return Work.inner(n) + 1;",
                           "return Work.inner(n) + 2;")
        v2 = v2.replace("return n + 1;", "return n + 2;")
        verdict = verdict_for(CALLS, v2)
        assert not verdict.eligible
        assert RULE_CHANGED_REACHES_CHANGED in violated(verdict)
        bad = [step for step in verdict.steps
               if step.rule == RULE_CHANGED_REACHES_CHANGED and not step.ok]
        assert any("Work.outer" in step.subject for step in bad)
        # inner reaches nothing changed: its own CALL01 step passes.
        assert any(step.rule == RULE_CHANGED_REACHES_CHANGED and step.ok
                   and "Work.inner" in step.subject
                   for step in verdict.steps)

    def test_changed_leaf_method_alone_is_eligible(self):
        v2 = CALLS.replace("return n + 1;", "return n + 2;")
        verdict = verdict_for(CALLS, v2)
        assert verdict.eligible, [str(s) for s in verdict.violations()]

    def test_recursive_changed_method_violates_call01(self):
        v1 = """
class Work {
    static int count(int n) {
        if (n < 1) { return 0; }
        return 1 + Work.count(n - 1);
    }
}
class Main { static void main() { Sys.print("" + Work.count(3)); } }
"""
        v2 = v1.replace("return 1 + Work.count(n - 1);",
                        "return 2 + Work.count(n - 1);")
        verdict = verdict_for(v1, v2)
        assert RULE_CHANGED_REACHES_CHANGED in violated(verdict)

    def test_steps_for_selects_one_method(self):
        v2 = CALLS.replace("return n + 1;", "return n + 2;")
        verdict = verdict_for(CALLS, v2)
        steps = verdict.steps_for("Work.inner((I)I)".replace("((I)I)", "(I)I"))
        assert steps and all("Work.inner" in step.subject for step in steps)

    def test_to_dict_shape(self):
        verdict = verdict_for(BASE, BASE_V2)
        payload = verdict.to_dict()
        assert payload["verdict"] == VERDICT_BYPASS
        assert payload["eligible"] is True
        assert payload["violated_rules"] == []
        assert all({"rule", "subject", "ok", "detail"} <= set(step)
                   for step in payload["steps"])


# ---------------------------------------------------------------------------
# the bundled sweep: verdicts must match the registry exactly


def _bundled_verdict(app, from_version, to_version):
    info = APPS[app]
    driver = AppDriver(
        app, info.versions, info.main_class,
        transformer_overrides=info.transformer_overrides,
    )
    prepared = driver.prepare_pair(from_version, to_version)
    return classify_update(driver.classfiles(from_version), prepared)


class TestBundledSweep:
    def test_verdicts_match_registry_on_all_22_updates(self):
        eligible = set()
        for app in APPS:
            for from_version, to_version in update_pairs(app):
                verdict = _bundled_verdict(app, from_version, to_version)
                if verdict.eligible:
                    eligible.add((app, from_version, to_version))
        assert eligible == set(EXPECTED_BYPASS_ELIGIBLE)

    @pytest.mark.parametrize("mutate, rule", [
        (lambda s: s.replace("class RequestParser {",
                             "class RequestParser { int advPad;", 1),
         RULE_NO_CLASS_UPDATES),
        (lambda s: s.replace(
            "class RequestParser {",
            "class RequestParser { static int adv() { return 1; }", 1),
         RULE_NO_METHOD_SET_CHANGE),
        (lambda s: s + "\nclass AdvExtra { int x; }\n",
         RULE_NO_CLASS_SET_CHANGE),
    ])
    def test_adversarial_mutants_of_eligible_update_are_rejected(
        self, mutate, rule
    ):
        """Mutating the bypass-eligible jetty 5.1.0->5.1.1 update into a
        non-con-free shape must flip the static verdict."""
        from repro.compiler.compile import compile_source
        from repro.dsu.upt import prepare_update

        info = APPS["jetty"]
        old_source = info.versions["5.1.0"]
        new_source = mutate(info.versions["5.1.1"])
        assert new_source != info.versions["5.1.1"], "mutation anchor missed"
        old = compile_source(old_source, version="5.1.0")
        new = compile_source(new_source, version="5.1.1adv")
        prepared = prepare_update(old, new, "5.1.0", "5.1.1adv")
        verdict = classify_update(old, prepared)
        assert not verdict.eligible
        assert rule in violated(verdict)
        assert verdict.verdict == VERDICT_SAFEPOINT


# ---------------------------------------------------------------------------
# dynamic: the engine's immediate-bypass apply mode


def submit_bypass(fixture, prepared, at_ms=55, bypass="auto", **kwargs):
    holder = {}
    request = UpdateRequest(
        prepared,
        policy=UpdatePolicy(
            retry=RetryPolicy(timeout_ms=2_000.0), bypass=bypass, **kwargs
        ),
    )
    fixture.vm.events.schedule(
        at_ms, lambda: holder.update(result=fixture.engine.submit(request))
    )
    return holder


class TestImmediateBypass:
    def test_bypass_applies_with_literally_zero_pause(self):
        fixture = UpdateFixture(BASE).start()
        holder = submit_bypass(fixture, fixture.prepare(BASE_V2))
        fixture.run(until_ms=2_000)
        result = holder["result"]
        assert result.succeeded, result.reason
        assert result.bypassed
        assert result.bc_verdict == VERDICT_BYPASS
        assert result.total_pause_ms == 0.0
        assert result.phase_ms == {}
        assert result.safepoint_wait_ms == 0.0
        assert result.retry_rounds == 0
        assert result.objects_transformed == 0
        counters = fixture.vm.metrics.counters
        assert counters["dsu.updates_bypassed"].value == 1

    def test_bypass_changes_behavior_cleanly(self):
        fixture = UpdateFixture(BASE).start()
        holder = submit_bypass(fixture, fixture.prepare(BASE_V2))
        fixture.run(until_ms=2_000)
        assert holder["result"].succeeded
        assert fixture.vm.trap_log == []
        assert "v1" in fixture.console and "v2" in fixture.console
        switch = fixture.console.index("v2")
        assert all(line == "v1" for line in fixture.console[:switch])
        assert all(line == "v2" for line in fixture.console[switch:])

    def test_bypass_off_takes_the_safepoint_path(self):
        fixture = UpdateFixture(BASE).start()
        holder = submit_bypass(fixture, fixture.prepare(BASE_V2), bypass="off")
        fixture.run(until_ms=2_000)
        result = holder["result"]
        assert result.succeeded and not result.bypassed
        assert result.bc_verdict == ""

    def test_bypass_require_aborts_ineligible_updates(self):
        fixture = UpdateFixture(BASE).start()
        v2 = BASE_V2.replace("class Greeter {", "class Greeter { int pad;")
        holder = submit_bypass(fixture, fixture.prepare(v2), bypass="require")
        fixture.run(until_ms=2_000)
        result = holder["result"]
        assert not result.succeeded
        assert result.reason_code == REASON_NOT_CON_FREE
        assert result.bc_verdict == VERDICT_SAFEPOINT
        # The abort is pre-flight: the app never noticed.
        assert fixture.vm.trap_log == []

    def test_bypass_auto_falls_back_to_safepoint(self):
        fixture = UpdateFixture(BASE).start()
        v2 = BASE_V2.replace("class Greeter {", "class Greeter { int pad;")
        holder = submit_bypass(fixture, fixture.prepare(v2), bypass="auto")
        fixture.run(until_ms=2_000)
        result = holder["result"]
        assert result.succeeded, result.reason
        assert not result.bypassed
        assert result.bc_verdict == VERDICT_SAFEPOINT
        assert result.total_pause_ms > 0.0

    def test_stale_frames_finish_on_old_code_and_drain(self):
        v1 = """
class Worker {
    static int chunk(int n) {
        int i = 0;
        while (i < n) { Sys.sleep(5); i = i + 1; }
        return 1;
    }
}
class Main {
    static int rounds;
    static void main() {
        while (rounds < 12) {
            Sys.print("r" + Worker.chunk(10));
            rounds = rounds + 1;
        }
    }
}
"""
        v2 = v1.replace("return 1;", "return 2;")
        fixture = UpdateFixture(v1).start()
        # 75 ms lands mid-chunk: one in-flight frame of the changed method.
        holder = submit_bypass(fixture, fixture.prepare(v2), at_ms=75)
        fixture.run(until_ms=3_000)
        result = holder["result"]
        assert result.succeeded and result.bypassed
        assert result.bypass_stale_frames == 1
        counters = fixture.vm.metrics.counters
        assert counters["dsu.bypass_stale_frames_retired"].value == 1
        # The in-flight activation completed on the old body ("r1"), every
        # later invocation bound the new one ("r2").
        assert "r1" in fixture.console and "r2" in fixture.console
        switch = fixture.console.index("r2")
        assert all(line == "r1" for line in fixture.console[:switch])
        assert all(line == "r2" for line in fixture.console[switch:])


#: long-lived variant so behavior is still observable after the held
#: window resolves at simulated second ~0.4
LONG = BASE.replace("rounds < 40", "rounds < 400")
LONG_V2 = LONG.replace('return "v1";', 'return "v2";')


class TestBypassHeldTransaction:
    def submit_held(self):
        fixture = UpdateFixture(LONG).start()
        prepared = fixture.prepare(LONG_V2)
        holder = submit_bypass(fixture, prepared, hold_transaction=True)
        fixture.run(until_ms=400)
        result = holder["result"]
        assert result.succeeded and result.bypassed, result.reason
        return fixture, result

    def entry(self, fixture):
        return fixture.vm.methods.lookup("Greeter", "greet", "()S")

    def test_hold_keeps_transaction_without_pinning_gc(self):
        fixture, result = self.submit_held()
        assert result.transaction is not None
        # A code-only snapshot holds no heap addresses, so unlike the
        # safe-point path the GC stays enabled during the held window.
        assert fixture.vm.gc_disabled is False
        fixture.vm.collect()  # must not corrupt the held snapshot

    def test_rollback_restores_old_bodies_and_version_tags(self):
        fixture, result = self.submit_held()
        bumped = self.entry(fixture).bytecode_version
        fixture.engine.rollback_applied(result)
        assert result.transaction is None
        assert self.entry(fixture).bytecode_version == bumped - 1
        # New invocations bind the restored old body again.
        before = len(fixture.console)
        fixture.run(until_ms=3_000)
        tail = fixture.console[before:]
        assert tail and all(line == "v1" for line in tail)
        assert fixture.vm.trap_log == []

    def test_commit_keeps_the_new_bodies(self):
        fixture, result = self.submit_held()
        fixture.engine.commit_applied(result)
        assert result.transaction is None
        before = len(fixture.console)
        fixture.run(until_ms=3_000)
        tail = fixture.console[before:]
        assert tail and all(line == "v2" for line in tail)
