"""CrossFTP application tests: protocol behaviour and live updates
(the paper's §4.4)."""

import pytest

from repro.apps.crossftp.versions import MAIN_CLASS, TRANSFORMER_OVERRIDES, VERSIONS
from repro.harness.updates import AppDriver
from repro.net.ftpclient import browse_script, long_session_script, upload_script
from repro.net.loadgen import ScriptedSession


def make_driver():
    return AppDriver(
        "crossftp", VERSIONS, MAIN_CLASS,
        transformer_overrides=TRANSFORMER_OVERRIDES,
    )


class TestProtocol:
    def test_login_and_browse(self):
        driver = make_driver().boot("1.05")
        session = ScriptedSession(driver.vm, 2121, browse_script()).start(20)
        driver.run(until_ms=2_000)
        assert session.succeeded, session.failed
        assert any("230 user alice" in line for line in session.transcript)
        assert any("welcome to crossftp" in line for line in session.transcript)

    def test_bad_password_rejected(self):
        driver = make_driver().boot("1.05")
        script = [
            ("expect", "220"),
            ("send", "USER alice"),
            ("expect", "331"),
            ("send", "PASS wrong"),
            ("expect", "530"),
            ("send", "QUIT"),
            ("expect", "221"),
            ("close",),
        ]
        session = ScriptedSession(driver.vm, 2121, script).start(20)
        driver.run(until_ms=2_000)
        assert session.succeeded, session.failed

    def test_upload_then_download(self):
        driver = make_driver().boot("1.06")
        session = ScriptedSession(
            driver.vm, 2121, upload_script("notes.txt", "hello dsu")
        ).start(20)
        driver.run(until_ms=2_000)
        assert session.succeeded, session.failed
        assert driver.vm.filesystem["/srv/ftp/notes.txt"] == "hello dsu"

    def test_anonymous_cannot_store_in_106(self):
        driver = make_driver().boot("1.06")
        script = [
            ("expect", "220"),
            ("send", "USER anonymous"),
            ("expect", "331"),
            ("send", "PASS "),
            ("expect", "230"),
            ("send", "STOR evil.txt"),
            ("expect", "550"),
            ("send", "QUIT"),
            ("expect", "221"),
            ("close",),
        ]
        session = ScriptedSession(driver.vm, 2121, script).start(20)
        driver.run(until_ms=2_000)
        assert session.succeeded, session.failed

    def test_107_adds_size_and_syst(self):
        driver = make_driver().boot("1.07")
        script = [
            ("expect", "220"),
            ("send", "SYST"),
            ("expect", "215"),
            ("send", "SIZE readme.txt"),
            ("expect", "213"),
            ("send", "QUIT"),
            ("expect", "221"),
            ("close",),
        ]
        session = ScriptedSession(driver.vm, 2121, script).start(20)
        driver.run(until_ms=2_000)
        assert session.succeeded, session.failed

    def test_concurrent_sessions(self):
        driver = make_driver().boot("1.05")
        sessions = [
            ScriptedSession(driver.vm, 2121, browse_script()).start(20 + 5 * i)
            for i in range(4)
        ]
        driver.run(until_ms=3_000)
        assert all(s.succeeded for s in sessions), [s.failed for s in sessions]


class TestUpdates:
    def test_105_to_106_applies_while_idle(self):
        driver = make_driver().boot("1.05")
        before = ScriptedSession(driver.vm, 2121, browse_script()).start(20)
        holder = driver.request_update_at(300, "1.06")
        after = ScriptedSession(driver.vm, 2121, browse_script()).start(600)
        driver.run(until_ms=3_000)
        result = holder["result"]
        assert result.succeeded, result.reason
        assert before.succeeded and after.succeeded
        # Post-update sessions see the new banner.
        assert any("1.06" in line for line in after.transcript)
        # The accept loop (FtpServer.main) is category-2 and always on
        # stack: the update goes through via OSR.
        assert result.used_osr

    def test_106_to_107_custom_config_transformer(self):
        driver = make_driver().boot("1.06")
        holder = driver.request_update_at(200, "1.07")
        driver.run(until_ms=2_000)
        result = holder["result"]
        assert result.succeeded, result.reason
        vm = driver.vm
        config = vm.registry.get("FtpConfig")
        assert vm.jtoc.read(config.static_slots["maxConnections"]) == 64
        assert vm.jtoc.read(config.static_slots["timeoutSeconds"]) == 300

    def test_107_to_108_under_load_times_out(self):
        driver = make_driver().boot("1.07")
        # A long NOOP session holds RequestHandler.run on the stack across
        # the whole attempt window.
        session = ScriptedSession(
            driver.vm, 2121, long_session_script(noops=400), poll_ms=5.0,
            timeout_ms=20_000,
        ).start(20)
        holder = driver.request_update_at(100, "1.08", timeout_ms=800)
        driver.run(until_ms=6_000)
        result = holder["result"]
        assert result.status == "aborted"
        assert "RequestHandler.run()V" in result.blockers_seen
        assert session.succeeded  # the session itself is unharmed

    def test_107_to_108_applies_when_idle_and_folds_transfer_log(self):
        driver = make_driver().boot("1.07")
        # Generate some transfers first so TransferLog has state to fold.
        session = ScriptedSession(driver.vm, 2121, browse_script()).start(20)
        holder = driver.request_update_at(500, "1.08", timeout_ms=2_000)
        after = ScriptedSession(driver.vm, 2121, browse_script()).start(900)
        driver.run(until_ms=4_000)
        result = holder["result"]
        assert result.succeeded, result.reason
        assert session.succeeded and after.succeeded
        vm = driver.vm
        stats = vm.registry.get("Stats")
        # TransferLog.transfers (1 RETR) carried into Stats.transfers, and
        # the new session's RETR incremented it post-update.
        assert vm.jtoc.read(stats.static_slots["transfers"]) == 2
        assert vm.registry.maybe_get("TransferLog") is None
        assert vm.registry.maybe_get("v107_TransferLog") is not None

    def test_105_to_106_with_active_session_uses_return_barrier(self):
        # RequestHandler.run's bytecode changes in 1.06, so a live session
        # blocks the update until it ends; a return barrier picks it up.
        driver = make_driver().boot("1.05")
        slow = ScriptedSession(
            driver.vm, 2121, long_session_script(noops=40), poll_ms=10.0,
            timeout_ms=20_000,
        ).start(20)
        holder = driver.request_update_at(100, "1.06", timeout_ms=5_000)
        driver.run(until_ms=8_000)
        result = holder["result"]
        assert result.succeeded, result.reason
        assert result.used_return_barriers
        assert slow.succeeded, slow.failed
        # The update landed only after the blocking session's server side
        # wound down (client poll granularity makes the client-observed
        # finish time slightly later).
        assert result.attempts >= 2
        assert result.finished_at_ms >= slow.finished_at - 15

    def test_106_to_107_transforms_live_session_via_osr(self):
        # In 1.07 RequestHandler.run's *bytecode* is unchanged but its class
        # gains fields: the blocked run frame is category-2 and is rescued
        # by OSR; the live RequestHandler object is transformed in place
        # (its login state survives, so the session keeps working).
        driver = make_driver().boot("1.06")
        slow = ScriptedSession(
            driver.vm, 2121, long_session_script(noops=60), poll_ms=10.0,
            timeout_ms=20_000,
        ).start(20)
        holder = driver.request_update_at(200, "1.07", timeout_ms=5_000)
        driver.run(until_ms=8_000)
        result = holder["result"]
        assert result.succeeded, result.reason
        assert result.used_osr
        assert slow.succeeded, slow.failed
        assert result.objects_transformed >= 1  # the live RequestHandler
        # The update landed while the session was still running.
        assert result.finished_at_ms < slow.finished_at
