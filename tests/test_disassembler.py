"""Tests for the javap-style bytecode listings."""

from repro.bytecode.disassembler import disassemble_class, disassemble_method
from repro.compiler.compile import compile_prelude, compile_source

SOURCE = """
class Point {
    int x;
    static int count;
    int get() { return this.x; }
    static void bump() { Point.count = Point.count + 1; }
    static int pick(int a, int b) {
        if (a < b) { return a; }
        return b;
    }
}
class Point3 extends Point { int z; }
"""


def classfiles():
    return compile_source(SOURCE, version="1.0")


class TestDisassembleMethod:
    def test_header_carries_flags_and_descriptor(self):
        point = classfiles()["Point"]
        text = disassemble_method(point.get_method("bump", "()V"))
        header = text.splitlines()[0]
        assert "static" in header
        assert header.endswith("bump()V")

    def test_listing_shape(self):
        point = classfiles()["Point"]
        lines = disassemble_method(point.get_method("get", "()I")).splitlines()
        assert lines[1].strip().startswith("max_locals=")
        assert lines[2].startswith("     0: ")
        body = "\n".join(lines)
        assert "GETFIELD" in body
        assert "RETURN_VALUE" in body

    def test_branch_targets_are_printed(self):
        point = classfiles()["Point"]
        text = disassemble_method(point.get_method("pick", "(I,I)I"))
        # The compiled `if` must show some branching op with a pc operand.
        assert any(
            op in text for op in ("JUMP", "BRANCH", "IF")
        ), text

    def test_native_methods_are_flagged(self):
        sys_cf = compile_prelude()["Sys"]
        native = next(m for m in sys_cf.methods.values() if m.is_native)
        text = disassemble_method(native)
        assert "native" in text.splitlines()[0]


class TestDisassembleClass:
    def test_class_header_and_fields(self):
        text = disassemble_class(classfiles()["Point"])
        assert text.splitlines()[0].startswith("class Point")
        assert "(version '1.0')" in text
        assert "x: I" in text
        assert "static" in text and "count: I" in text

    def test_superclass_is_shown(self):
        text = disassemble_class(classfiles()["Point3"])
        assert "class Point3 extends Point" in text.splitlines()[0]

    def test_methods_are_embedded_indented(self):
        text = disassemble_class(classfiles()["Point"])
        assert "bump()V" in text
        # Method listings are nested one level deeper than the class line.
        assert any(
            line.startswith("    ") and ": " in line
            for line in text.splitlines()
        )
