"""Advanced DSU scenarios: recursive forced transformation and cycle
detection (paper §3.4), update chains, inlined-restricted methods, and
post-update heap health."""

import pytest

from repro.dsu.engine import UpdateRequest
from tests.dsu_helpers import UpdateFixture

# ---------------------------------------------------------------------------
# recursive transformation via Sys.forceTransform (paper §3.4)

# main() is version-identical (it is always on the stack); the
# version-specific setup and rendering live in Boot/Report.
_FORCE_MAIN = """
class Main {
    static int rounds;
    static void main() {
        Boot.setup();
        while (rounds < 30) {
            Sys.sleep(10);
            rounds = rounds + 1;
            Sys.print(Report.render());
        }
    }
}
class Root {
    static A a;
}
"""

FORCE_V1 = _FORCE_MAIN + """
class A { int x; B partner; }
class B { int y; }
class Boot {
    static void setup() {
        A a = new A();
        B b = new B();
        a.x = 5;
        b.y = 7;
        a.partner = b;
        Root.a = a;
    }
}
class Report {
    static string render() { return Root.a.x + "/" + Root.a.partner.y; }
}
"""

FORCE_V2 = _FORCE_MAIN + """
class A { int x; int sum; B partner; }
class B { int y; int yDoubled; }
class Boot {
    static void setup() {
        A a = new A();
        B b = new B();
        a.x = 5;
        b.y = 7;
        b.yDoubled = 14;
        a.partner = b;
        a.sum = a.x + b.yDoubled;
        Root.a = a;
    }
}
class Report {
    static string render() {
        return Root.a.x + "/" + Root.a.partner.y + "/" + Root.a.sum + "/"
            + Root.a.partner.yDoubled;
    }
}
"""

# A's transformer needs B's *transformed* state (yDoubled), so it forces
# B's transformation first — the paper's special VM function.
FORCE_TRANSFORMERS = {
    "A": """
    static void jvolveClass(A unused) { }
    static void jvolveObject(A to, v10_A from) {
        to.x = from.x;
        to.partner = from.partner;
        Sys.forceTransform(to.partner);
        to.sum = to.x + to.partner.yDoubled;
    }
""",
    "B": """
    static void jvolveClass(B unused) { }
    static void jvolveObject(B to, v10_B from) {
        to.y = from.y;
        to.yDoubled = from.y * 2;
    }
""",
}


class TestForcedTransformation:
    def test_transformer_reads_dependent_transformed_state(self):
        fixture = UpdateFixture(FORCE_V1, heap_cells=1 << 16).start()
        holder = fixture.update_at(55, FORCE_V2, overrides=FORCE_TRANSFORMERS)
        fixture.run(until_ms=3_000)
        result = holder["result"]
        assert result.succeeded, result.reason
        # x=5, y=7 preserved; yDoubled computed by B's transformer; sum
        # computed by A's transformer from B's *transformed* state.
        assert "5/7/19/14" in fixture.console

    def test_force_transform_is_idempotent(self):
        # Forcing an already-transformed object is a no-op; order of the
        # update log must not matter.
        fixture = UpdateFixture(FORCE_V1, heap_cells=1 << 16).start()
        overrides = dict(FORCE_TRANSFORMERS)
        overrides["A"] = """
    static void jvolveClass(A unused) { }
    static void jvolveObject(A to, v10_A from) {
        to.x = from.x;
        to.partner = from.partner;
        Sys.forceTransform(to.partner);
        Sys.forceTransform(to.partner);
        to.sum = to.x + to.partner.yDoubled;
    }
"""
        holder = fixture.update_at(55, FORCE_V2, overrides=overrides)
        fixture.run(until_ms=3_000)
        assert holder["result"].succeeded, holder["result"].reason


_CYCLE_MAIN = """
class Main {
    static int rounds;
    static void main() {
        CycleBoot.setup();
        while (rounds < 40) { Sys.sleep(10); rounds = rounds + 1; }
    }
}
class Root { static A a; }
"""

CYCLE_V1 = _CYCLE_MAIN + """
class A { int x; A peer; }
class CycleBoot {
    static void setup() {
        A one = new A();
        A two = new A();
        one.peer = two;
        two.peer = one;
        one.x = 1;
        two.x = 2;
        Root.a = one;
    }
}
"""

CYCLE_V2 = CYCLE_V1.replace("class A { int x; A peer; }",
                            "class A { int x; int doubled; A peer; }")

# Ill-defined transformers: each A needs its peer transformed first.
CYCLE_TRANSFORMERS = {
    "A": """
    static void jvolveClass(A unused) { }
    static void jvolveObject(A to, v10_A from) {
        to.x = from.x;
        to.peer = from.peer;
        Sys.forceTransform(to.peer);
        to.doubled = to.peer.doubled + 1;
    }
""",
}


class TestCycleDetection:
    def test_transformer_cycle_aborts_update(self):
        fixture = UpdateFixture(CYCLE_V1, heap_cells=1 << 16).start()
        holder = fixture.update_at(55, CYCLE_V2, overrides=CYCLE_TRANSFORMERS)
        fixture.run(until_ms=3_000)
        result = holder["result"]
        assert result.status == "aborted"
        assert "cycle" in result.reason
        assert result.failed_phase == "transform"
        assert result.reason_code == "transformer-cycle"
        assert result.rolled_back
        # The half-transformed heap was rolled back: the VM resumes the
        # old version instead of halting.
        assert fixture.vm.halted is False
        vm = fixture.vm
        root = vm.registry.get("Root")
        one = vm.jtoc.read(root.static_slots["a"])
        # Old layout (x, peer — no `doubled` field) and old values survive.
        assert [s.name for s in vm.objects.class_of(one).field_layout] == \
            ["x", "peer"]
        assert vm.objects.read_field(one, "x") == 1
        two = vm.objects.read_field(one, "peer")
        assert vm.objects.read_field(two, "x") == 2
        assert vm.objects.read_field(two, "peer") == one
        # The program keeps running to completion on the old version.
        fixture.run(until_ms=10_000)
        main = vm.registry.get("Main")
        assert vm.jtoc.read(main.static_slots["rounds"]) == 40


# ---------------------------------------------------------------------------
# update chains: several updates applied to one VM in sequence

CHAIN_V1 = """
class Counter {
    static int value;
    static string show() { return "v1:" + value; }
}
class Main {
    static int rounds;
    static void main() {
        while (rounds < 100) {
            Sys.sleep(10);
            Counter.value = Counter.value + 1;
            rounds = rounds + 1;
            Sys.print(Counter.show());
        }
    }
}
"""
CHAIN_V2 = CHAIN_V1.replace('return "v1:" + value;', 'return "v2:" + value;')
CHAIN_V3 = CHAIN_V2.replace(
    "class Counter {\n    static int value;",
    "class Counter {\n    static int value;\n    static int epoch;",
).replace('return "v2:" + value;', 'return "v3." + epoch + ":" + value;')


class TestUpdateChains:
    def test_three_versions_in_sequence(self):
        fixture = UpdateFixture(CHAIN_V1).start()
        first = fixture.update_at(105, CHAIN_V2, v2="2.0")
        fixture.run(until_ms=300)
        assert first["result"].succeeded, first["result"].reason

        second = fixture.update_at(405, CHAIN_V3, v2="3.0")
        fixture.run(until_ms=1_500)
        assert second["result"].succeeded, second["result"].reason

        console = fixture.console
        assert any(line.startswith("v1:") for line in console)
        assert any(line.startswith("v2:") for line in console)
        assert any(line.startswith("v3.0:") for line in console)
        # The static survived both updates: the counter never reset.
        values = [int(line.split(":")[1]) for line in console]
        assert values == sorted(values)
        assert values[-1] == 100

    def test_renamed_classes_accumulate(self):
        fixture = UpdateFixture(CHAIN_V1).start()
        first = fixture.update_at(105, CHAIN_V2, v2="2.0")
        fixture.run(until_ms=300)
        assert first["result"].succeeded
        second = fixture.update_at(405, CHAIN_V3, v2="3.0")
        fixture.run(until_ms=1_500)
        assert second["result"].succeeded
        # v2 -> v3 was a class update, so the v2 Counter was retired.
        assert fixture.vm.registry.maybe_get("v20_Counter") is not None
        assert not fixture.vm.registry.get("Counter").obsolete


# ---------------------------------------------------------------------------
# inlining interacts with restriction (paper §3.2)

INLINE_V1 = """
class Hot {
    static int step(int x) { return x + 1; }
}
class Driver {
    static int total;
    static void spinOnce() {
        int acc = 0;
        for (int i = 0; i < 40; i = i + 1) { acc = Hot.step(acc); }
        total = total + acc;
    }
}
class Main {
    static int rounds;
    static void main() {
        while (rounds < 200) {
            Driver.spinOnce();
            Sys.sleep(5);
            rounds = rounds + 1;
        }
    }
}
"""
INLINE_V2 = INLINE_V1.replace("return x + 1;", "return x + 2;")


class TestInlinedRestriction:
    def test_update_to_inlined_method_takes_effect(self):
        fixture = UpdateFixture(INLINE_V1).start()
        # Warm up long enough for spinOnce to reach the opt tier and
        # inline Hot.step.
        fixture.run(until_ms=400)
        spin = fixture.vm.methods.lookup("Driver", "spinOnce", "()V")
        assert spin.opt_code is not None
        assert ("Hot", "step", "(I)I") in spin.opt_code.inlined

        holder = fixture.update_at(
            fixture.vm.clock.now_ms + 5, INLINE_V2, v2="2.0"
        )
        fixture.run(until_ms=3_000)
        result = holder["result"]
        assert result.succeeded, result.reason
        # The host's stale opt code (with the old body inlined) was dropped.
        total_slot = fixture.vm.registry.get("Driver").static_slots["total"]
        total = fixture.vm.jtoc.read(total_slot)
        # 200 rounds: early rounds add 40 (step +1), later rounds add 80.
        assert total > 200 * 40
        assert total < 200 * 80


# ---------------------------------------------------------------------------
# post-update heap health

HEALTH_V1 = """
class Node {
    int value;
    Node next;
    Node(int v, Node n) { this.value = v; this.next = n; }
}
class Root { static Node head; }
class Main {
    static int rounds;
    static void main() {
        Node head = null;
        for (int i = 1; i <= 20; i = i + 1) { head = new Node(i, head); }
        Root.head = head;
        while (rounds < 60) {
            Sys.sleep(10);
            rounds = rounds + 1;
            // churn to force post-update collections
            for (int i = 0; i < 40; i = i + 1) { Node junk = new Node(i, null); }
            Sys.print("" + Sum.all());
        }
    }
}
class Sum {
    static int all() {
        int total = 0;
        Node n = Root.head;
        while (n != null) { total = total + n.value; n = n.next; }
        return total;
    }
}
"""
HEALTH_V2 = HEALTH_V1.replace(
    "class Node {\n    int value;\n    Node next;",
    "class Node {\n    int value;\n    int visits;\n    Node next;",
)


class TestPostUpdateHeapHealth:
    def test_collections_after_update_preserve_transformed_graph(self):
        fixture = UpdateFixture(HEALTH_V1, heap_cells=9000).start()
        holder = fixture.update_at(105, HEALTH_V2)
        fixture.run(until_ms=3_000)
        result = holder["result"]
        assert result.succeeded, result.reason
        assert result.objects_transformed >= 20
        # Several ordinary collections ran after the update (small heap +
        # churn); the 20-node transformed list kept summing to 210.
        assert fixture.vm.collector.collections >= 2
        assert set(fixture.console) == {"210"}
        # Status header cells of transformed objects were cleared, so later
        # collections never misread them as forwarding pointers.
        node_class = fixture.vm.registry.get("Node")
        address = fixture.vm.jtoc.read(
            fixture.vm.registry.get("Root").static_slots["head"]
        )
        assert fixture.vm.objects.status(address) == 0


class TestEngineGuards:
    def test_concurrent_update_requests_rejected(self):
        fixture = UpdateFixture(CHAIN_V1).start()
        prepared = fixture.prepare(CHAIN_V2, v2="2.0")
        fixture.engine.submit(UpdateRequest(prepared))
        with pytest.raises(RuntimeError, match="already in progress"):
            fixture.engine.submit(UpdateRequest(prepared))

    def test_stale_timeout_does_not_kill_next_update(self):
        # First update applies quickly; its timeout event fires later and
        # must not abort the *second* in-flight update.
        fixture = UpdateFixture(CHAIN_V1).start()
        first = fixture.update_at(105, CHAIN_V2, v2="2.0", timeout_ms=250)
        fixture.run(until_ms=300)
        assert first["result"].succeeded
        second = fixture.update_at(320, CHAIN_V3, v2="3.0", timeout_ms=5_000)
        # Run past the first update's timeout instant (105 + 250 = 355).
        fixture.run(until_ms=1_500)
        assert second["result"].succeeded, second["result"].reason
