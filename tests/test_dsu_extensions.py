"""Tests for the implemented future-work extensions (paper §3.5):

* **extended OSR** — updating a *changed* method while it runs, given a
  user-supplied pc/locals mapping (UpStare-style);
* **automatic read barrier** — forcing dependent object transformation on
  field reads during the transformation phase, instead of explicit
  ``Sys.forceTransform`` calls.
"""

import pytest

from repro.dsu.engine import UpdateEngine, UpdateRequest
from repro.dsu.policy import UpdatePolicy
from repro.dsu.safepoint import RetryPolicy
from repro.dsu.upt import derive_identity_mapping, prepare_update
from repro.compiler.compile import compile_source
from repro.vm.vm import VM

from tests.dsu_helpers import UpdateFixture
from tests.test_dsu_advanced import (
    FORCE_TRANSFORMERS,
    FORCE_V1,
    FORCE_V2,
)

# ---------------------------------------------------------------------------
# extended OSR: the paper's canonical unsupportable update — a changed
# method inside an infinite loop — becomes applicable with a mapping.

SPIN_V1 = """
class Loop {
    static int beats;
    static void spin() {
        while (true) {
            Sys.sleep(5);
            beats = beats + 1;
            if (beats >= 60) { Sys.halt(); }
        }
    }
}
class Main { static void main() { Loop.spin(); } }
"""

# Same control shape, different increment: "a common change is to modify
# the contents of an event handling loop" (§3.5).
SPIN_V2 = SPIN_V1.replace("beats = beats + 1;", "beats = beats + 2;")


def _spin_mapping(fixture, v2_source, v2="2.0"):
    old = fixture.classfiles[fixture.current_version]["Loop"].get_method(
        "spin", "()V"
    )
    new = compile_source(v2_source, version=v2)["Loop"].get_method("spin", "()V")
    return derive_identity_mapping(old, new)


class TestExtendedOSR:
    def test_without_mapping_the_update_aborts(self):
        # Timeout must expire before the loop's natural halt at ~300 ms.
        fixture = UpdateFixture(SPIN_V1).start()
        holder = fixture.update_at(20, SPIN_V2, timeout_ms=150)
        fixture.run(until_ms=3_000)
        assert holder["result"].status == "aborted"

    def test_with_mapping_the_active_method_is_updated(self):
        fixture = UpdateFixture(SPIN_V1).start()
        mapping = _spin_mapping(fixture, SPIN_V2)
        prepared = fixture.prepare(SPIN_V2)
        prepared.active_method_mappings[("Loop", "spin", "()V")] = mapping
        holder = {}
        fixture.vm.events.schedule(
            22,
            lambda: holder.update(
                result=fixture.engine.submit(UpdateRequest(
                    prepared,
                    policy=UpdatePolicy(retry=RetryPolicy(timeout_ms=1_000)),
                ))
            ),
        )
        fixture.run(until_ms=3_000)
        result = holder["result"]
        assert result.succeeded, result.reason
        assert result.extended_osr_frames == 1
        # The loop kept its state (beats not reset) and switched to the new
        # increment: it halts at exactly 60 with mixed strides.
        vm = fixture.vm
        beats_slot = vm.registry.get("Loop").static_slots["beats"]
        assert vm.jtoc.read(beats_slot) == 60
        assert vm.halted
        # Mixed strides prove both versions ran: pure v1 ends at 60 only
        # after 60 * 5ms = 300ms of sleeping; pure v2 after 30 beats.
        # The update landed at ~22ms (≈4 old beats), so the final simulated
        # time sits strictly between the two pure schedules.
        assert 150 < vm.clock.now_ms < 300

    def test_identity_mapping_shape(self):
        old = compile_source(SPIN_V1, version="1")["Loop"].get_method("spin", "()V")
        new = compile_source(SPIN_V2, version="2")["Loop"].get_method("spin", "()V")
        mapping = derive_identity_mapping(old, new)
        assert len(mapping.pc_map) == len(old.instructions)
        assert all(a == b for a, b in mapping.pc_map.items())

    def test_prefix_mapping_for_different_lengths(self):
        longer = SPIN_V1.replace(
            "beats = beats + 1;", "beats = beats + 1; Loop.beats = beats;"
        )
        old = compile_source(SPIN_V1, version="1")["Loop"].get_method("spin", "()V")
        new = compile_source(longer, version="2")["Loop"].get_method("spin", "()V")
        mapping = derive_identity_mapping(old, new)
        assert len(mapping.pc_map) < len(new.instructions)
        assert mapping.pc_map  # common prefix exists (the sleep call)


# ---------------------------------------------------------------------------
# automatic read barrier: the FORCE scenario from test_dsu_advanced, but
# the transformer never calls Sys.forceTransform — the barrier does it.

BARRIER_FREE_TRANSFORMERS = {
    "A": """
    static void jvolveClass(A unused) { }
    static void jvolveObject(A to, v10_A from) {
        to.x = from.x;
        to.partner = from.partner;
        to.sum = to.x + to.partner.yDoubled;
    }
""",
    "B": FORCE_TRANSFORMERS["B"],
}


class TestAutomaticReadBarrier:
    def _run(self, auto: bool):
        fixture = UpdateFixture(FORCE_V1, heap_cells=1 << 16)
        # Swap in an engine with the requested barrier setting.
        fixture.engine = UpdateEngine(fixture.vm, auto_read_barrier=auto)
        fixture.start()
        holder = fixture.update_at(55, FORCE_V2, overrides=BARRIER_FREE_TRANSFORMERS)
        fixture.run(until_ms=3_000)
        return fixture, holder["result"]

    def test_with_barrier_dependent_state_is_correct(self):
        fixture, result = self._run(auto=True)
        assert result.succeeded, result.reason
        assert "5/7/19/14" in fixture.console

    def test_without_barrier_transformer_sees_defaults(self):
        # Paper-faithful default: without forceTransform (explicit or
        # automatic), A's transformer reads B's yDoubled before B was
        # transformed and observes 0 — sum comes out wrong.
        fixture, result = self._run(auto=False)
        assert result.succeeded, result.reason
        assert "5/7/5/14" in fixture.console  # sum = x + 0
        assert "5/7/19/14" not in fixture.console

    def test_barrier_composes_with_explicit_force(self):
        fixture = UpdateFixture(FORCE_V1, heap_cells=1 << 16)
        fixture.engine = UpdateEngine(fixture.vm, auto_read_barrier=True)
        fixture.start()
        holder = fixture.update_at(55, FORCE_V2, overrides=FORCE_TRANSFORMERS)
        fixture.run(until_ms=3_000)
        assert holder["result"].succeeded
        assert "5/7/19/14" in fixture.console
