"""Transactional-abort tests driven by the fault-injection harness.

Every test injects one failure mode into an otherwise-healthy update and
asserts the same contract: the update reports a structured abort (phase +
reason code), the VM is *not* halted, the pre-update state is intact, and
the old-version workload keeps running to completion afterwards.
"""

import pytest

from repro.dsu.engine import UpdateEngine, UpdateRequest
from repro.dsu.faults import FaultInjector, FaultPlan
from repro.dsu.policy import UpdatePolicy
from repro.dsu.safepoint import RetryPolicy
from tests.dsu_helpers import UpdateFixture
from tests.test_gc_extras import UPDATE_V1, UPDATE_V2


def pool_fields(vm):
    """Field names of the first pooled Item — the update adds ``c``."""
    pool = vm.registry.get("Pool")
    array = vm.jtoc.read(pool.static_slots["items"])
    item = vm.objects.array_get(array, 0)
    return [slot.name for slot in vm.objects.class_of(item).field_layout]


def rounds_done(vm):
    main = vm.registry.get("Main")
    return vm.jtoc.read(main.static_slots["rounds"])


def inject(fixture, plan):
    fixture.engine.fault_injector = FaultInjector(plan)
    return fixture


def assert_clean_abort(fixture, result, phase, reason_code, rolled_back=True):
    assert result.status == "aborted", result.status
    assert result.failed_phase == phase
    assert result.reason_code == reason_code
    assert result.rolled_back is rolled_back
    assert fixture.vm.halted is False


def assert_old_version_workload_completes(fixture):
    """The pooled-items program still finishes all 60 rounds on v1."""
    assert pool_fields(fixture.vm) == ["a", "b"]
    fixture.run(until_ms=10_000)
    assert fixture.vm.halted is False
    assert rounds_done(fixture.vm) == 60
    vm = fixture.vm
    pool = vm.registry.get("Pool")
    array = vm.jtoc.read(pool.static_slots["items"])
    assert vm.objects.array_length(array) == 50
    for index in range(50):
        item = vm.objects.array_get(array, index)
        assert vm.objects.read_field(item, "a") == 0


class TestSafepointFaults:
    def test_injected_blocker_times_out_without_side_effects(self):
        fixture = inject(
            UpdateFixture(UPDATE_V1),
            FaultPlan(block_safepoint_forever=True),
        ).start()
        holder = fixture.update_at(55, UPDATE_V2, timeout_ms=300)
        fixture.run(until_ms=2_000)
        result = holder["result"]
        # Pre-installation abort: side-effect-free, so no rollback needed.
        assert_clean_abort(fixture, result, "safepoint", "timeout",
                           rolled_back=False)
        assert "timeout" in result.reason
        assert "<injected-safepoint-blocker>" in result.blockers_seen
        assert result.injected_faults
        assert "v10_Item" not in fixture.vm.classfiles
        assert_old_version_workload_completes(fixture)

    def test_retry_rounds_exhaust_then_abort(self):
        fixture = inject(
            UpdateFixture(UPDATE_V1),
            FaultPlan(block_safepoint_forever=True),
        ).start()
        prepared = fixture.prepare(UPDATE_V2)
        holder = {}
        fixture.vm.events.schedule(55, lambda: holder.update(
            result=fixture.engine.submit(UpdateRequest(
                prepared,
                policy=UpdatePolicy(retry=RetryPolicy(
                    timeout_ms=100, retries=2, backoff=2.0,
                )),
            ))
        ))
        fixture.run(until_ms=3_000)
        result = holder["result"]
        assert_clean_abort(fixture, result, "safepoint", "timeout",
                           rolled_back=False)
        # 100 + 200 + 400 sim-ms of budget across three rounds, all used.
        assert result.retry_rounds == 2
        assert result.rounds_allowed == 3
        assert result.finished_at_ms - result.requested_at_ms >= 700
        assert_old_version_workload_completes(fixture)


class TestRetrySucceeds:
    V1 = """
class Worker {
    static int calls;
    static void busy() {
        int i = 0;
        while (i < 120) { Sys.sleep(5); i = i + 1; }
        calls = calls + 1;
    }
}
class Main {
    static int rounds;
    static void main() {
        Worker.busy();
        while (rounds < 100) { Sys.sleep(10); rounds = rounds + 1; }
    }
}
"""
    V2 = V1.replace("calls = calls + 1;", "calls = calls + 2;")

    def request(self, fixture, retries):
        prepared = fixture.prepare(self.V2)
        holder = {}
        fixture.vm.events.schedule(25, lambda: holder.update(
            result=fixture.engine.submit(UpdateRequest(
                prepared,
                policy=UpdatePolicy(retry=RetryPolicy(
                    timeout_ms=100, retries=retries, backoff=2.0,
                )),
            ))
        ))
        return holder

    def test_backoff_round_outlives_the_blocker(self):
        # busy() runs ~600 sim-ms; the first 100 ms round expires, but the
        # exponential backoff (100+200+400) keeps the update alive until
        # busy() returns, so the *third* round applies it.
        fixture = UpdateFixture(self.V1).start()
        holder = self.request(fixture, retries=3)
        fixture.run(until_ms=5_000)
        result = holder["result"]
        assert result.succeeded, result.reason
        assert result.retry_rounds == 2
        assert "Worker.busy()V" in result.blockers_seen
        assert fixture.vm.halted is False

    def test_same_update_aborts_without_retries(self):
        fixture = UpdateFixture(self.V1).start()
        holder = self.request(fixture, retries=0)
        fixture.run(until_ms=5_000)
        result = holder["result"]
        assert_clean_abort(fixture, result, "safepoint", "timeout",
                           rolled_back=False)
        assert result.rounds_allowed == 1


class TestClassloadFaults:
    def test_mid_install_failure_rolls_back_metadata(self):
        fixture = inject(
            UpdateFixture(UPDATE_V1),
            FaultPlan(classload_fail_after=0),
        ).start()
        holder = fixture.update_at(55, UPDATE_V2)
        fixture.run(until_ms=2_000)
        result = holder["result"]
        assert_clean_abort(fixture, result, "classload", "injected-fault")
        # The rename (Item -> v10_Item) was undone.
        assert fixture.vm.registry.maybe_get("v10_Item") is None
        assert fixture.vm.registry.get("Item").obsolete is False
        assert "v10_Item" not in fixture.vm.classfiles
        assert_old_version_workload_completes(fixture)


class TestOSRFaults:
    # Category-2 pattern from test_dsu_updates: Pump.run is unchanged but
    # bakes Config's static offsets, and never leaves the stack.
    V1 = """
class Config {
    static int level = 1;
}
class Pump {
    static int beats;
    static void run() {
        while (true) {
            Sys.sleep(5);
            beats = beats + Config.level;
            if (beats > 100) { Sys.halt(); }
        }
    }
}
class Main {
    static void main() { Pump.run(); }
}
"""
    V2 = V1.replace(
        "static int level = 1;",
        "static int level = 1; static string name = \"cfg\";",
    )

    def test_osr_failure_aborts_and_old_loop_keeps_beating(self):
        fixture = inject(UpdateFixture(self.V1), FaultPlan(osr_fail=True))
        fixture.start()
        holder = fixture.update_at(20, self.V2, timeout_ms=300)
        fixture.run(until_ms=400)
        result = holder["result"]
        assert_clean_abort(fixture, result, "osr", "injected-fault")
        vm = fixture.vm
        beats_slot = vm.registry.get("Pump").static_slots["beats"]
        before = vm.jtoc.read(beats_slot)
        assert before > 0
        # The new Config metadata was rolled back with everything else.
        assert "name" not in vm.registry.get("Config").static_slots
        fixture.run(until_ms=vm.clock.now_ms + 100)
        assert vm.jtoc.read(beats_slot) > before
        assert vm.halted is False


class TestGCFaults:
    def test_mid_copy_oom_unflips_the_heap(self):
        fixture = inject(
            UpdateFixture(UPDATE_V1),
            FaultPlan(gc_oom_after_copies=10),
        ).start()
        holder = fixture.update_at(55, UPDATE_V2)
        fixture.run(until_ms=2_000)
        result = holder["result"]
        assert_clean_abort(fixture, result, "gc", "oom")
        assert "heap exhausted" in result.reason
        assert_old_version_workload_completes(fixture)

    def test_unflipped_heap_survives_a_later_real_collection(self):
        fixture = inject(
            UpdateFixture(UPDATE_V1),
            FaultPlan(gc_oom_after_copies=10),
        ).start()
        fixture.update_at(55, UPDATE_V2)
        fixture.run(until_ms=2_000)
        vm = fixture.vm
        # The scrubbed from-space must be collectable again: force a real
        # collection and verify the object graph.
        vm.collect()
        assert pool_fields(vm) == ["a", "b"]
        pool = vm.registry.get("Pool")
        array = vm.jtoc.read(pool.static_slots["items"])
        assert vm.objects.array_length(array) == 50


class TestTransformerFaults:
    def test_transformer_exception_rolls_back(self):
        fixture = inject(
            UpdateFixture(UPDATE_V1),
            FaultPlan(transformer_raise_at=5),
        ).start()
        holder = fixture.update_at(55, UPDATE_V2)
        fixture.run(until_ms=2_000)
        result = holder["result"]
        assert_clean_abort(fixture, result, "transform", "injected-fault")
        assert result.injected_faults
        assert_old_version_workload_completes(fixture)

    def test_injected_cycle_rolls_back(self):
        fixture = inject(
            UpdateFixture(UPDATE_V1),
            FaultPlan(transformer_cycle_at=3),
        ).start()
        holder = fixture.update_at(55, UPDATE_V2)
        fixture.run(until_ms=2_000)
        result = holder["result"]
        assert_clean_abort(fixture, result, "transform", "transformer-cycle")
        assert "cycle" in result.reason
        assert_old_version_workload_completes(fixture)

    def test_update_retried_after_abort_succeeds(self):
        # The rollback leaves the VM fit for a *second* attempt: clear the
        # injector and re-request the same update.
        fixture = inject(
            UpdateFixture(UPDATE_V1),
            FaultPlan(transformer_raise_at=5),
        ).start()
        holder = fixture.update_at(55, UPDATE_V2)
        fixture.run(until_ms=200)
        assert holder["result"].status == "aborted"
        fixture.engine.fault_injector = None
        prepared = fixture.prepare(UPDATE_V2)
        second = {}
        fixture.vm.events.schedule(
            fixture.vm.clock.now_ms + 20,
            lambda: second.update(
                result=fixture.engine.submit(UpdateRequest(prepared))
            ),
        )
        fixture.run(until_ms=2_000)
        assert second["result"].succeeded, second["result"].reason
        assert pool_fields(fixture.vm) == ["a", "b", "c"]


class TestServerSurvivesInjectedAbort:
    def test_jetty_keeps_serving_after_mid_install_abort(self):
        from repro.apps.jetty.versions import HTTP_PORT, MAIN_CLASS, VERSIONS
        from repro.harness.updates import AppDriver
        from repro.net.httpclient import HttpConnectionClient

        driver = AppDriver("jetty", VERSIONS, MAIN_CLASS).boot("5.1.1")
        driver.engine.fault_injector = FaultInjector(
            FaultPlan(classload_fail_after=0)
        )
        before = HttpConnectionClient(
            driver.vm, HTTP_PORT, "/file.bin", 2
        ).start(50)
        holder = driver.request_update_at(300, "5.1.2", timeout_ms=3_000)
        driver.run(until_ms=4_000)
        result = holder["result"]
        assert result.status == "aborted"
        assert result.failed_phase == "classload"
        assert result.rolled_back
        assert driver.vm.halted is False
        assert before.succeeded, before.failed
        # The old server version still serves new connections after the abort.
        after = HttpConnectionClient(
            driver.vm, HTTP_PORT, "/file.bin", 2
        ).start(driver.vm.clock.now_ms + 50)
        driver.run(until_ms=driver.vm.clock.now_ms + 2_000)
        assert after.succeeded, after.failed
        assert after.statuses == [200, 200]
