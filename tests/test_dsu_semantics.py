"""Semantic guarantees of DSU safe points (paper §3.2).

Includes a reproduction of the paper's version-consistency example: method
``handle`` calls ``process`` then ``cleanup``; the update moves an
initialization from ``cleanup`` into ``process``. If the update lands while
``handle`` is between the two calls, the program runs *old* ``process``
(no initialization) followed by *new* ``cleanup`` (which no longer
initializes) — "leading to incorrect semantics. To avoid such version
consistency problems the programmer can include handle in the restricted
set."
"""

import pytest

from repro.dsu.engine import UpdateRequest
from tests.dsu_helpers import UpdateFixture

# ---------------------------------------------------------------------------
# the §3.2 version-consistency example

# v1: cleanup() initializes Status.code and then reports it.
CONSISTENCY_V1 = """
class Status {
    static int code;
    static int reports;
}
class Worker {
    static void handle() {
        process();
        Sys.sleep(40);
        cleanup();
    }
    static void process() {
        Status.reports = Status.reports + 0;
    }
    static void cleanup() {
        Status.code = 7;
        report();
    }
    static void report() {
        Sys.print("code=" + Status.code);
        Status.code = 0;
    }
}
class Main {
    static int rounds;
    static void main() {
        while (rounds < 6) {
            Worker.handle();
            rounds = rounds + 1;
        }
    }
}
"""

# v2: the initialization moves into process(); cleanup() only reports.
CONSISTENCY_V2 = CONSISTENCY_V1.replace(
    """    static void process() {
        Status.reports = Status.reports + 0;
    }
    static void cleanup() {
        Status.code = 7;
        report();
    }""",
    """    static void process() {
        Status.code = 7;
        Status.reports = Status.reports + 0;
    }
    static void cleanup() {
        report();
    }""",
)


class TestVersionConsistency:
    def test_without_blacklist_a_hybrid_execution_is_observable(self):
        # Request the update while handle() sleeps between process() and
        # cleanup(): handle's bytecode is unchanged, so the update applies
        # — and this round observes old-process + new-cleanup: code=0.
        fixture = UpdateFixture(CONSISTENCY_V1).start()
        holder = fixture.update_at(60, CONSISTENCY_V2)
        fixture.run(until_ms=2_000)
        result = holder["result"]
        assert result.succeeded, result.reason
        assert "code=0" in fixture.console  # the hybrid round misfired
        assert fixture.console[0] == "code=7"  # pure-old rounds were fine
        assert fixture.console[-1] == "code=7"  # pure-new rounds are fine

    def test_blacklisting_handle_restores_consistency(self):
        # "the programmer can include handle in the restricted set": the
        # update then waits for handle() to return before applying.
        fixture = UpdateFixture(CONSISTENCY_V1).start()
        holder = fixture.update_at(
            60, CONSISTENCY_V2,
            blacklist=[("Worker", "handle", "()V")],
        )
        fixture.run(until_ms=2_000)
        result = holder["result"]
        assert result.succeeded, result.reason
        assert result.used_return_barriers  # waited for handle to return
        assert all(line == "code=7" for line in fixture.console)
        assert len(fixture.console) == 6


# ---------------------------------------------------------------------------
# strict old/new partition of executions (§3.2: "no code from the new
# version executes before the update completes, and no code from the old
# version executes afterward")

PARTITION_V1 = """
class Emit {
    static string phase() { return "old"; }
    static string tag() { return "O"; }
}
class Main {
    static int rounds;
    static void main() {
        while (rounds < 40) {
            Sys.print(Emit.phase() + ":" + Emit.tag());
            Sys.sleep(5);
            rounds = rounds + 1;
        }
    }
}
"""

PARTITION_V2 = PARTITION_V1.replace('return "old";', 'return "new";').replace(
    'return "O";', 'return "N";'
)


class TestExecutionPartition:
    def test_changed_methods_switch_atomically(self):
        fixture = UpdateFixture(PARTITION_V1).start()
        holder = fixture.update_at(65, PARTITION_V2)
        fixture.run(until_ms=2_000)
        assert holder["result"].succeeded
        lines = fixture.console
        # Never a mixed line: both methods flip in the same instant.
        assert set(lines) <= {"old:O", "new:N"}
        switch = lines.index("new:N")
        assert all(line == "old:O" for line in lines[:switch])
        assert all(line == "new:N" for line in lines[switch:])


# ---------------------------------------------------------------------------
# objects of a deleted class survive as plain data

DELETED_V1 = """
class Legacy {
    int payload;
    Legacy(int p) { this.payload = p; }
}
class Keep {
    static Object relic;
}
class Main {
    static int rounds;
    static void main() {
        Keep.relic = new Legacy(99);
        while (rounds < 40) {
            Sys.sleep(10);
            rounds = rounds + 1;
            // churn to force collections after the update
            for (int i = 0; i < 30; i = i + 1) { string junk = "j" + i; }
        }
        Sys.print("" + (Keep.relic != null));
    }
}
"""

# v2 deletes Legacy entirely; main no longer constructs it.
DELETED_V2 = """
class Keep {
    static Object relic;
}
class Main {
    static int rounds;
    static void main() {
        Keep.relic = null;
        while (rounds < 40) {
            Sys.sleep(10);
            rounds = rounds + 1;
            for (int i = 0; i < 30; i = i + 1) { string junk = "j" + i; }
        }
        Sys.print("" + (Keep.relic != null));
    }
}
"""


class TestDeletedClassObjects:
    def test_instances_of_deleted_class_survive_collections(self):
        # Main's bytecode changes (it constructed Legacy), so the update
        # waits for it... which never happens — use a setup helper pattern
        # instead: here we just verify the engine renames the class and the
        # live instance keeps tracing correctly through many collections.
        fixture = UpdateFixture(DELETED_V1, heap_cells=6_000).start()
        vm = fixture.vm
        fixture.run(until_ms=50)
        legacy = vm.registry.get("Legacy")
        prepared = fixture.prepare(DELETED_V2)
        assert "Legacy" in prepared.spec.deleted_classes
        # main is category-1 (its bytecode differs), so the update lands
        # only at main's exit; the relic object must still survive every
        # collection before then under its renamed metadata.
        holder = {}
        vm.events.schedule(
            60, lambda: holder.update(
                result=fixture.engine.submit(UpdateRequest(prepared))
            )
        )
        fixture.run(until_ms=3_000)
        assert holder["result"].succeeded
        assert vm.registry.maybe_get("v10_Legacy") is legacy
        assert legacy.obsolete
        assert vm.collector.collections >= 1
