"""End-to-end dynamic software update tests.

Each test boots version 1 of a small program, lets it run, applies an
update while it executes, and checks both the mechanism used (immediate /
return barrier / OSR / abort) and the program's observable behaviour."""

import pytest

from repro.dsu.engine import UpdateRequest
from tests.dsu_helpers import UpdateFixture

# ---------------------------------------------------------------------------
# 1. method-body update


V1_GREETER = """
class Greeter { static string greet() { return "v1"; } }
class Main {
    static int rounds;
    static void main() {
        while (rounds < 20) {
            Sys.print(Greeter.greet());
            Sys.sleep(10);
            rounds = rounds + 1;
        }
    }
}
"""

V2_GREETER = V1_GREETER.replace('return "v1";', 'return "v2";')


class TestMethodBodyUpdate:
    def test_body_update_applies_and_changes_behaviour(self):
        fixture = UpdateFixture(V1_GREETER).start()
        holder = fixture.update_at(55, V2_GREETER)
        fixture.run(until_ms=2_000)
        result = holder["result"]
        assert result.succeeded, result.reason
        assert "v1" in fixture.console and "v2" in fixture.console
        # strictly v1s then v2s
        switch = fixture.console.index("v2")
        assert all(line == "v1" for line in fixture.console[:switch])
        assert all(line == "v2" for line in fixture.console[switch:])

    def test_body_update_spec_is_minimal(self):
        fixture = UpdateFixture(V1_GREETER)
        prepared = fixture.prepare(V2_GREETER)
        spec = prepared.spec
        assert spec.method_body_updates == {("Greeter", "greet", "()S")}
        assert not spec.class_updates
        assert spec.method_body_only()

    def test_profiling_reset_after_body_update(self):
        fixture = UpdateFixture(V1_GREETER).start()
        entry = fixture.vm.methods.lookup("Greeter", "greet", "()S")
        holder = fixture.update_at(55, V2_GREETER)
        fixture.run(until_ms=2_000)
        assert holder["result"].succeeded
        assert entry.bytecode_version == 1


# ---------------------------------------------------------------------------
# 2. class update: field addition with default transformer


V1_COUNTER = """
class Stats {
    int hits;
    Stats(int h) { this.hits = h; }
}
class Holder {
    static Stats stats;
}
class Main {
    static int rounds;
    static void main() {
        Holder.stats = new Stats(7);
        while (rounds < 30) {
            Sys.sleep(10);
            rounds = rounds + 1;
            Sys.print("hits=" + Report.render());
        }
    }
}
class Report {
    static string render() { return "" + Holder.stats.hits; }
}
"""

V2_COUNTER = """
class Stats {
    int hits;
    int misses;
    Stats(int h) { this.hits = h; this.misses = 0; }
}
class Holder {
    static Stats stats;
}
class Main {
    static int rounds;
    static void main() {
        Holder.stats = new Stats(7);
        while (rounds < 30) {
            Sys.sleep(10);
            rounds = rounds + 1;
            Sys.print("hits=" + Report.render());
        }
    }
}
class Report {
    static string render() { return Holder.stats.hits + "/" + Holder.stats.misses; }
}
"""


class TestClassUpdateDefaultTransformer:
    def test_field_addition_preserves_existing_state(self):
        fixture = UpdateFixture(V1_COUNTER, heap_cells=1 << 16).start()
        holder = fixture.update_at(55, V2_COUNTER)
        fixture.run(until_ms=3_000)
        result = holder["result"]
        assert result.succeeded, result.reason
        assert "hits=7" in fixture.console          # before the update
        assert "hits=7/0" in fixture.console        # after: hits kept, misses=0
        assert result.objects_transformed >= 1

    def test_spec_classifies_change(self):
        fixture = UpdateFixture(V1_COUNTER)
        prepared = fixture.prepare(V2_COUNTER)
        spec = prepared.spec
        assert "Stats" in spec.class_updates
        assert not spec.method_body_only()
        # Report.render changed bytecode; Main.main unchanged but references
        # Holder/Stats... Main is indirect only if it bakes Stats offsets.
        assert ("Report", "render", "()S") in spec.method_body_updates

    def test_old_class_renamed_and_retired(self):
        fixture = UpdateFixture(V1_COUNTER, heap_cells=1 << 16).start()
        holder = fixture.update_at(55, V2_COUNTER)
        fixture.run(until_ms=3_000)
        assert holder["result"].succeeded
        vm = fixture.vm
        renamed = vm.registry.maybe_get("v10_Stats")
        assert renamed is not None and renamed.obsolete
        current = vm.registry.get("Stats")
        assert not current.obsolete
        assert len(current.field_layout) == 2


# ---------------------------------------------------------------------------
# 3. the paper's running example: custom transformer retypes a field
#    (JavaEmailServer User.forwardAddresses: string[] -> EmailAddress[])


# main() must be bytecode-identical across versions (it is always on the
# stack, so any change to it blocks the update — exactly what the paper's
# failing updates demonstrate). Version-specific setup lives in Boot.setup,
# which runs once and is off-stack by the time the update is requested.
_USER_MAIN = """
class Main {
    static int rounds;
    static void main() {
        Boot.setup();
        while (rounds < 30) {
            Sys.sleep(10);
            rounds = rounds + 1;
            Sys.print(Describe.admin());
        }
    }
}
"""

V1_USER = _USER_MAIN + """
class User {
    string username;
    string[] forwardAddresses;
    User(string u) { this.username = u; }
}
class Directory {
    static User admin;
}
class Boot {
    static void setup() {
        User u = new User("ada");
        string[] fwd = new string[2];
        fwd[0] = "ada@lovelace.org";
        fwd[1] = "countess@analytical.engine";
        u.forwardAddresses = fwd;
        Directory.admin = u;
    }
}
class Describe {
    static string admin() {
        return Directory.admin.username + " fwd:" + Directory.admin.forwardAddresses.length;
    }
}
"""

V2_USER = _USER_MAIN + """
class EmailAddress {
    string user;
    string domain;
    EmailAddress(string u, string d) { this.user = u; this.domain = d; }
    string render() { return user + "@" + domain; }
}
class User {
    string username;
    EmailAddress[] forwardAddresses;
    User(string u) { this.username = u; }
}
class Directory {
    static User admin;
}
class Boot {
    static void setup() {
        User u = new User("ada");
        EmailAddress[] fwd = new EmailAddress[1];
        fwd[0] = new EmailAddress("ada", "lovelace.org");
        u.forwardAddresses = fwd;
        Directory.admin = u;
    }
}
class Describe {
    static string admin() {
        User a = Directory.admin;
        string text = a.username;
        for (int i = 0; i < a.forwardAddresses.length; i = i + 1) {
            text = text + " <" + a.forwardAddresses[i].render() + ">";
        }
        return text;
    }
}
"""

# Custom transformer mirroring the paper's Figure 3.
USER_TRANSFORMER = """
    static void jvolveClass(User unused) { }
    static void jvolveObject(User to, v10_User from) {
        to.username = from.username;
        int len = from.forwardAddresses.length;
        to.forwardAddresses = new EmailAddress[len];
        for (int i = 0; i < len; i = i + 1) {
            string[] parts = from.forwardAddresses[i].split("@", 2);
            to.forwardAddresses[i] = new EmailAddress(parts[0], parts[1]);
        }
    }
"""


class TestCustomTransformer:
    def test_paper_figure3_field_retyping(self):
        fixture = UpdateFixture(V1_USER, heap_cells=1 << 16).start()
        holder = fixture.update_at(
            55, V2_USER, overrides={"User": USER_TRANSFORMER}
        )
        fixture.run(until_ms=3_000)
        result = holder["result"]
        assert result.succeeded, result.reason
        assert "ada fwd:2" in fixture.console
        assert (
            "ada <ada@lovelace.org> <countess@analytical.engine>" in fixture.console
        )

    def test_default_transformer_would_null_the_field(self):
        fixture = UpdateFixture(V1_USER, heap_cells=1 << 16)
        prepared = fixture.prepare(V2_USER)
        # The generated default copies username (same type) but NOT the
        # retyped forwardAddresses.
        assert "to.username = from.username;" in prepared.transformers_source
        assert "to.forwardAddresses" not in prepared.transformers_source


# ---------------------------------------------------------------------------
# 4. return barriers: a restricted method is on stack when the update is
#    requested; the update applies once it returns


V1_BARRIER = """
class Worker {
    static int calls;
    static void busy() {
        // long-running restricted method: ~50ms of sleeping inside
        int i = 0;
        while (i < 5) { Sys.sleep(10); i = i + 1; }
        calls = calls + 1;
    }
}
class Main {
    static int rounds;
    static void main() {
        while (rounds < 12) {
            Worker.busy();
            Sys.print("done " + rounds);
            rounds = rounds + 1;
        }
    }
}
"""

V2_BARRIER = V1_BARRIER.replace("calls = calls + 1;", "calls = calls + 2;")


class TestReturnBarriers:
    def test_update_waits_for_restricted_method_to_return(self):
        fixture = UpdateFixture(V1_BARRIER).start()
        # Request mid-busy(): busy() is changed, so it must leave the stack.
        holder = fixture.update_at(25, V2_BARRIER)
        fixture.run(until_ms=3_000)
        result = holder["result"]
        assert result.succeeded, result.reason
        assert result.used_return_barriers
        assert result.return_barriers_installed >= 1
        assert result.attempts >= 2
        assert "Worker.busy()V" in result.blockers_seen


# ---------------------------------------------------------------------------
# 5. timeout abort: changed method inside an infinite loop (the paper's two
#    unsupported updates)


V1_INFINITE = """
class Loop {
    static int beats;
    static void spin() {
        while (true) { Sys.sleep(5); beats = beats + 1; }
    }
}
class Main {
    static void main() { Loop.spin(); }
}
"""

V2_INFINITE = V1_INFINITE.replace("beats = beats + 1;", "beats = beats + 2;")


class TestTimeoutAbort:
    def test_update_aborts_when_restricted_method_never_returns(self):
        fixture = UpdateFixture(V1_INFINITE).start()
        holder = fixture.update_at(20, V2_INFINITE, timeout_ms=500)
        fixture.run(until_ms=2_000)
        result = holder["result"]
        assert result.status == "aborted"
        assert "timeout" in result.reason
        assert "Loop.spin()V" in result.blockers_seen
        # Program keeps running old code unharmed.
        assert fixture.vm.jtoc.read(
            fixture.vm.registry.get("Loop").static_slots["beats"]
        ) > 0


# ---------------------------------------------------------------------------
# 6. OSR: an *unchanged* method in an infinite loop that references an
#    updated class (category 2) — JavaEmailServer 1.3.1 -> 1.3.2 pattern


V1_OSR = """
class Config {
    static int level = 1;
}
class Pump {
    static int beats;
    static void run() {
        while (true) {
            Sys.sleep(5);
            beats = beats + Config.level;
            Sys.print("beat " + beats);
            if (beats > 100) { Sys.halt(); }
        }
    }
}
class Main {
    static void main() { Pump.run(); }
}
"""

# Config gains a field -> class update; Pump.run bytecode is UNCHANGED but
# bakes Config's static offset -> category 2, always on stack -> needs OSR.
V2_OSR = V1_OSR.replace(
    "static int level = 1;",
    "static int level = 1; static string name = \"cfg\";",
)


class TestOnStackReplacement:
    def test_category2_infinite_loop_rescued_by_osr(self):
        fixture = UpdateFixture(V1_OSR).start()
        holder = fixture.update_at(20, V2_OSR, timeout_ms=1_000)
        fixture.run(until_ms=5_000)
        result = holder["result"]
        assert result.succeeded, result.reason
        assert result.used_osr
        assert result.osr_frames >= 1
        assert not result.used_return_barriers

    def test_spec_classifies_pump_run_as_indirect(self):
        fixture = UpdateFixture(V1_OSR)
        prepared = fixture.prepare(V2_OSR)
        spec = prepared.spec
        assert "Config" in spec.class_updates
        assert ("Pump", "run", "()V") in spec.indirect_methods


# ---------------------------------------------------------------------------
# 7. statics carried by the default class transformer


# main is version-identical; the changed rendering lives in Render.show.
_STATICS_MAIN = """
class Main {
    static int rounds;
    static void main() {
        while (rounds < 30) {
            Sys.sleep(10);
            Tick.bump();
            rounds = rounds + 1;
            Sys.print(Render.show());
        }
    }
}
class Tick {
    static void bump() { Registry.requests = Registry.requests + 1; }
}
"""

V1_STATICS = _STATICS_MAIN + """
class Registry {
    static int requests;
    static string motd = "welcome";
}
class Render {
    static string show() { return Registry.motd + ":" + Registry.requests; }
}
"""

V2_STATICS = _STATICS_MAIN + """
class Registry {
    static int requests;
    static string motd = "welcome";
    static int errors;
}
class Render {
    static string show() {
        return Registry.motd + ":" + Registry.requests + ":" + Registry.errors;
    }
}
"""


class TestClassTransformerStatics:
    def test_statics_survive_class_update(self):
        fixture = UpdateFixture(V1_STATICS).start()
        holder = fixture.update_at(105, V2_STATICS)
        fixture.run(until_ms=3_000)
        result = holder["result"]
        assert result.succeeded, result.reason
        # Post-update lines show three fields with the request count intact.
        post = [line for line in fixture.console if line.count(":") == 2]
        assert post, fixture.console
        motd, requests, errors = post[0].split(":")
        assert motd == "welcome"
        assert int(requests) >= 10  # pre-update count preserved, still rising
        assert errors == "0"
        assert fixture.console[-1] == "welcome:30:0"


# ---------------------------------------------------------------------------
# 8. layout propagation: updating a superclass updates subclasses too


V1_HIERARCHY = """
class Animal {
    string name;
    Animal(string n) { this.name = n; }
}
class Dog extends Animal {
    int barks;
    Dog(string n) { super(n); this.barks = 3; }
}
class Kennel { static Dog dog; }
class Main {
    static int rounds;
    static void main() {
        Kennel.dog = new Dog("rex");
        while (rounds < 30) {
            Sys.sleep(10);
            rounds = rounds + 1;
            Sys.print(Show.dog());
        }
    }
}
class Show {
    static string dog() { return Kennel.dog.name + "/" + Kennel.dog.barks; }
}
"""

V2_HIERARCHY = V1_HIERARCHY.replace(
    'string name;\n    Animal(string n) { this.name = n; }',
    'string name;\n    int age;\n    Animal(string n) { this.name = n; this.age = 0; }',
)


class TestHierarchyPropagation:
    def test_superclass_field_addition_transforms_subclass_objects(self):
        fixture = UpdateFixture(V1_HIERARCHY, heap_cells=1 << 16).start()
        prepared = fixture.prepare(V2_HIERARCHY)
        assert "Animal" in prepared.spec.class_updates
        assert "Dog" in prepared.spec.class_updates  # layout propagated
        holder = {}
        fixture.vm.events.schedule(
            55, lambda: holder.update(
                result=fixture.engine.submit(UpdateRequest(prepared))
            )
        )
        fixture.run(until_ms=3_000)
        assert holder["result"].succeeded, holder["result"].reason
        assert "rex/3" in fixture.console
        dog_class = fixture.vm.registry.get("Dog")
        assert [f.name for f in dog_class.field_layout] == ["name", "age", "barks"]


# ---------------------------------------------------------------------------
# 9. blacklisted methods restrict the update (category 3)


class TestBlacklist:
    def test_user_blacklisted_method_blocks_update(self):
        fixture = UpdateFixture(V1_GREETER).start()
        holder = fixture.update_at(
            55,
            V2_GREETER,
            timeout_ms=80,
            blacklist=[("Main", "main", "()V")],
        )
        fixture.run(until_ms=2_000)
        result = holder["result"]
        assert result.status == "aborted"
        assert "Main.main()V" in result.blockers_seen
