"""Guard tests: every example script must run to completion (their own
assertions double as checks of the documented behaviour)."""

import runpy
import sys

import pytest

EXAMPLES = [
    "examples/quickstart.py",
    "examples/pause_time_study.py",
    "examples/update_mechanics_tour.py",
    "examples/webserver_live_update.py",
    "examples/email_server_evolution.py",
]


@pytest.mark.parametrize("path", EXAMPLES)
def test_example_runs(path, capsys, monkeypatch):
    argv = [path]
    if path.endswith("pause_time_study.py"):
        argv.append("1200")  # keep the suite fast
    monkeypatch.setattr(sys, "argv", argv)
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{path} produced no output"
