"""Fleet-scale rolling updates: controller, balancer, member lifecycle,
and the engine's held-transaction verification window.

Fault-injection scenarios live in ``test_fleet_faults.py``; these tests
cover the happy paths and the building blocks.
"""

import pytest

from repro.dsu.engine import UpdateRequest
from repro.dsu.policy import UpdatePolicy
from repro.dsu.safepoint import RetryPolicy
from repro.fleet import (
    FleetController,
    RolloutPolicy,
    STATE_SERVING,
)
from repro.fleet.member import app_classfiles
from tests.dsu_helpers import UpdateFixture
from tests.test_dsu_faults import pool_fields
from tests.test_gc_extras import UPDATE_V1, UPDATE_V2


def make_fleet(app="jetty", version="5.1.1", size=2, seed=7, **kwargs):
    controller = FleetController(app, version, size=size, seed=seed, **kwargs)
    controller.run_for(150)  # boot: main running, listeners bound
    return controller


def warm_traffic(controller, preload_ms=200.0):
    controller.start_traffic(interval_ms=40.0, jitter_ms=8.0)
    controller.run_for(preload_ms)
    return controller


class TestFleetBasics:
    def test_fleet_requires_at_least_two_members(self):
        with pytest.raises(ValueError):
            FleetController("jetty", "5.1.0", size=1)

    def test_members_share_compiled_classfiles(self):
        # Compilation is memoized per (app, version): booting N members
        # must reuse the same classfile dict, not recompile.
        assert app_classfiles("jetty", "5.1.0") is app_classfiles(
            "jetty", "5.1.0"
        )

    def test_fleet_serves_traffic_in_lockstep(self):
        controller = warm_traffic(make_fleet())
        controller.run_for(600)
        controller.stop_traffic()
        controller.run_for(500)
        assert controller.sessions_completed() > 10
        assert controller.sessions_failed() == 0
        assert controller.availability() == 1.0
        # Lockstep: every member clock sits within one slice of fleet time.
        for member in controller.members.values():
            assert member.vm.clock.now_ms >= controller.now - controller.slice_ms
        # Per-member labelled series exist for each member that served.
        served = {
            key for key in controller.metrics.counters
            if key.startswith("fleet.sessions_completed{")
        }
        assert len(served) == len(controller.members)

    def test_traffic_is_deterministic_for_a_seed(self):
        def arrivals(seed):
            controller = make_fleet(seed=seed)
            controller.start_traffic(interval_ms=40.0, jitter_ms=8.0)
            controller.run_for(400)
            return [
                (record.member, record.routed_at_ms)
                for member in controller.members.values()
                for record in member.sessions
            ]

        assert arrivals(7) == arrivals(7)
        assert arrivals(7) != arrivals(8)


class TestLoadBalancer:
    def test_evict_and_admit_steer_routing(self):
        controller = make_fleet()
        balancer = controller.balancer
        assert [m.name for m in balancer.routable(controller.now)] == [
            "m0", "m1",
        ]
        balancer.evict("m0")
        assert [m.name for m in balancer.routable(controller.now)] == ["m1"]
        record = balancer.route(controller.now)
        assert record is not None and record.member == "m1"
        balancer.admit("m0")
        assert [m.name for m in balancer.routable(controller.now)] == [
            "m0", "m1",
        ]

    def test_route_with_no_members_counts_a_drop(self):
        controller = make_fleet()
        balancer = controller.balancer
        balancer.evict("m0")
        balancer.evict("m1")
        assert balancer.route(controller.now) is None
        assert balancer.dropped == 1

    def test_round_robin_spreads_sessions(self):
        controller = make_fleet()
        members = [
            controller.balancer.route(controller.now).member for _ in range(6)
        ]
        assert members.count("m0") == 3
        assert members.count("m1") == 3


class TestRollingUpdate:
    def test_happy_path_updates_every_member(self):
        controller = warm_traffic(make_fleet(app="jetty", version="5.1.1"))
        report = controller.rolling_update("5.1.2")
        controller.stop_traffic()
        controller.run_for(500)

        assert report.status == "completed"
        assert not report.halted
        assert report.rollback_kind == ""
        assert report.canary == "m0"
        assert report.versions == {"m0": "5.1.2", "m1": "5.1.2"}
        assert [row.outcome for row in report.members] == [
            "updated", "updated",
        ]
        assert report.members[0].canary and not report.members[1].canary
        # The canary's verification window ran probes.
        assert report.members[0].probes
        assert controller._sum_counters("fleet.updates_applied") == 2
        assert controller._sum_counters("fleet.rollbacks") == 0
        assert controller.availability() == 1.0
        for member in controller.members.values():
            assert member.state == STATE_SERVING
            assert member.vm.gc_disabled is False

    def test_rollout_report_is_json_serializable(self):
        import json

        controller = warm_traffic(make_fleet(app="jetty", version="5.1.0"))
        report = controller.rolling_update("5.1.1")
        payload = json.dumps(report.to_dict())
        assert "5.1.1" in payload

    def test_members_already_on_target_are_skipped(self):
        controller = make_fleet(app="jetty", version="5.1.1")
        controller.members["m1"].current_version = "5.1.2"
        report = controller.rolling_update("5.1.2")
        assert report.members[1].outcome == "updated"
        assert report.members[1].attempts == 0
        assert report.versions["m1"] == "5.1.2"

    def test_transition_latency_recorded_during_rollout(self):
        controller = warm_traffic(make_fleet(app="jetty", version="5.1.1"))
        controller.rolling_update("5.1.2")
        controller.stop_traffic()
        controller.run_for(500)
        assert controller.transition_p99_ms() > 0.0


class TestHeldTransactionWindow:
    """UpdateEngine.submit(hold_transaction=True) keeps the transaction
    snapshot (and pins the GC) until commit_applied / rollback_applied —
    the mechanism behind the canary verify window."""

    def submit_held(self):
        fixture = UpdateFixture(UPDATE_V1).start()
        prepared = fixture.prepare(UPDATE_V2)
        holder = {}
        fixture.vm.events.schedule(55, lambda: holder.update(
            result=fixture.engine.submit(UpdateRequest(
                prepared,
                policy=UpdatePolicy(retry=RetryPolicy(timeout_ms=2_000.0),
                                    hold_transaction=True),
            ))
        ))
        fixture.run(until_ms=1_000)
        result = holder["result"]
        assert result.succeeded, result.reason
        return fixture, result

    def test_hold_retains_transaction_and_pins_gc(self):
        fixture, result = self.submit_held()
        assert result.transaction is not None
        assert fixture.vm.gc_disabled is True
        assert pool_fields(fixture.vm) == ["a", "b", "c"]

    def test_commit_releases_the_window(self):
        fixture, result = self.submit_held()
        fixture.engine.commit_applied(result)
        assert result.transaction is None
        assert fixture.vm.gc_disabled is False
        # Still on the new version; the world keeps running.
        assert pool_fields(fixture.vm) == ["a", "b", "c"]
        fixture.run(until_ms=10_000)
        assert fixture.vm.halted is False

    def test_rollback_restores_the_old_version(self):
        fixture, result = self.submit_held()
        fixture.engine.rollback_applied(result)
        assert result.transaction is None
        assert fixture.vm.gc_disabled is False
        assert pool_fields(fixture.vm) == ["a", "b"]
        assert fixture.vm.metrics.counters["dsu.canary_rollbacks"].value == 1
        # The old-version workload must run to completion afterwards.
        fixture.run(until_ms=10_000)
        assert fixture.vm.halted is False

    def test_commit_and_rollback_require_a_held_transaction(self):
        fixture = UpdateFixture(UPDATE_V1).start()
        holder = fixture.update_at(55, UPDATE_V2)
        fixture.run(until_ms=1_000)
        result = holder["result"]
        assert result.succeeded and result.transaction is None
        with pytest.raises(ValueError):
            fixture.engine.commit_applied(result)
        with pytest.raises(ValueError):
            fixture.engine.rollback_applied(result)

    def test_plain_submit_does_not_pin_gc(self):
        fixture = UpdateFixture(UPDATE_V1).start()
        holder = fixture.update_at(55, UPDATE_V2)
        fixture.run(until_ms=1_000)
        assert holder["result"].succeeded
        assert fixture.vm.gc_disabled is False
