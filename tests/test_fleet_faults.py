"""Fleet-level fault injection: every scenario must end with a structured
rollout report naming the fault, the fleet still serving, and the
orchestrator alive — no fault may raise out of ``rolling_update``.

Mirrors the harness scenarios (``repro.harness.fleet``) at unit-test
scale: two members, jetty 5.1.1 -> 5.1.2 (a pair that installs classes,
so mid-install crash points actually fire).
"""

from repro.dsu.faults import FleetFaultInjector, FleetFaultPlan
from repro.fleet import (
    FAULT_CANARY_REGRESSION,
    FAULT_DRAIN_OVERRUN,
    FAULT_HEALTH_FLAP,
    FAULT_MEMBER_CRASH,
    FAULT_RETRY_EXHAUSTION,
    FleetController,
    RolloutPolicy,
    STATE_SERVING,
)

OLD, NEW = "5.1.1", "5.1.2"


def run_scenario(plan, rollout=None, size=2, seed=7):
    controller = FleetController(
        "jetty", OLD, size=size, seed=seed, rollout=rollout,
        faults=FleetFaultInjector(plan),
    )
    controller.run_for(150)
    controller.start_traffic(interval_ms=40.0, jitter_ms=8.0)
    controller.run_for(200)
    report = controller.rolling_update(NEW)
    controller.stop_traffic()
    controller.run_for(500)
    return controller, report


def assert_fleet_alive(controller):
    """Whatever the fault did, the fleet must still serve traffic."""
    before = controller.sessions_completed()
    controller.start_traffic(interval_ms=40.0, jitter_ms=8.0)
    controller.run_for(400)
    controller.stop_traffic()
    controller.run_for(500)
    assert controller.sessions_completed() > before
    for member in controller.members.values():
        assert member.state == STATE_SERVING


class TestMemberCrashMidUpdate:
    def test_canary_crash_rolls_back_by_restart_and_halts(self):
        controller, report = run_scenario(
            FleetFaultPlan(crash_member="m0", crash_after_classes=0)
        )
        assert report.status == "rolled-back"
        assert report.rollback_kind == "restart"
        assert report.halted
        assert FAULT_MEMBER_CRASH in report.fault_names()
        assert "m0" in report.halt_reason
        # Canary restarted on the old version; the rest never started.
        assert report.versions == {"m0": OLD, "m1": OLD}
        assert report.members[0].outcome == "crash-recovered"
        assert report.members[1].outcome == "skipped"
        assert controller.members["m0"].restarts == 1
        assert controller._sum_counters("fleet.member_crashes") == 1
        assert controller._sum_counters("fleet.rollbacks") == 1
        assert_fleet_alive(controller)

    def test_crash_strands_sessions_as_member_crash_failures(self):
        controller, _ = run_scenario(
            FleetFaultPlan(crash_member="m0", crash_after_classes=0)
        )
        key = controller.metrics.labelled(
            "fleet.session_failures", kind="member-crash"
        )
        # Sessions open on the dying VM (if any were in flight past the
        # drain) are recorded as member-crash losses, never left pending.
        stranded = controller.metrics.counters.get(key)
        for member in controller.members.values():
            for record in member.sessions:
                assert record.done or not record.lost
        if stranded is not None:
            assert stranded.value >= 1


class TestCanaryHealthRegression:
    def test_unhealthy_streak_triggers_snapshot_rollback(self):
        controller, report = run_scenario(
            FleetFaultPlan(health_flap_member="m0", health_flap_checks=99)
        )
        assert report.status == "rolled-back"
        assert report.rollback_kind == "snapshot"
        assert report.halted
        assert FAULT_CANARY_REGRESSION in report.fault_names()
        assert report.versions == {"m0": OLD, "m1": OLD}
        assert report.members[0].outcome == "rolled-back"
        # The rollback came from the held transaction, not a restart.
        canary = controller.members["m0"]
        assert canary.restarts == 0
        assert canary.vm.metrics.counters["dsu.canary_rollbacks"].value == 1
        assert canary.vm.gc_disabled is False
        assert controller._sum_counters("fleet.rollbacks") == 1
        assert_fleet_alive(controller)

    def test_unhealthy_probes_are_recorded_in_the_report(self):
        _, report = run_scenario(
            FleetFaultPlan(health_flap_member="m0", health_flap_checks=99)
        )
        probes = report.members[0].probes
        unhealthy = [p for p in probes if p["status"] == "unhealthy"]
        policy = RolloutPolicy()
        assert len(unhealthy) >= policy.unhealthy_probes_to_rollback
        assert all(p["injected"] for p in unhealthy)


class TestHealthCheckFlap:
    def test_short_flap_is_tolerated_and_rollout_completes(self):
        controller, report = run_scenario(
            FleetFaultPlan(health_flap_member="m0", health_flap_checks=2)
        )
        # Two forced-unhealthy probes stay under the rollback streak (3):
        # the fault is *recorded* but the rollout still lands everywhere.
        assert report.status == "completed"
        assert not report.halted
        assert FAULT_HEALTH_FLAP in report.fault_names()
        assert report.versions == {"m0": NEW, "m1": NEW}
        assert controller._sum_counters("fleet.rollbacks") == 0
        assert_fleet_alive(controller)


class TestRetryExhaustion:
    POLICY = RolloutPolicy(
        update_timeout_ms=300.0, update_retries=0, max_update_attempts=2
    )

    def test_canary_exhaustion_halts_with_structured_abort(self):
        controller, report = run_scenario(
            FleetFaultPlan(block_update_member="m0"), rollout=self.POLICY
        )
        assert report.status == "halted"
        assert report.rollback_kind == ""  # nothing was ever applied
        assert FAULT_RETRY_EXHAUSTION in report.fault_names()
        assert report.versions == {"m0": OLD, "m1": OLD}
        row = report.members[0]
        assert row.outcome == "retry-exhausted"
        assert row.attempts == self.POLICY.max_update_attempts
        assert row.abort_why == "safepoint/timeout"
        assert controller._sum_counters("fleet.updates_aborted") == 1
        assert_fleet_alive(controller)

    def test_transient_block_succeeds_on_second_attempt(self):
        controller, report = run_scenario(
            FleetFaultPlan(
                block_update_member="m0", block_update_attempts=1
            ),
            rollout=self.POLICY,
        )
        # Only the first submit() attempt is sabotaged; the retry lands.
        assert report.status == "completed"
        assert report.versions == {"m0": NEW, "m1": NEW}
        assert report.members[0].attempts == 2
        assert_fleet_alive(controller)


class TestDrainDeadlineOverrun:
    def test_stalled_drain_is_recorded_but_not_fatal(self):
        controller, report = run_scenario(
            FleetFaultPlan(stall_drain_member="m0"),
            rollout=RolloutPolicy(drain_deadline_ms=200.0),
        )
        assert report.status == "completed"
        assert FAULT_DRAIN_OVERRUN in report.fault_names()
        assert report.versions == {"m0": NEW, "m1": NEW}
        row = report.members[0]
        assert row.drain_overrun
        assert row.drain_ms >= 200.0
        assert controller._sum_counters("fleet.drain_overruns") == 1
        assert_fleet_alive(controller)

    def test_drain_casualties_do_not_count_against_health(self):
        controller, report = run_scenario(
            FleetFaultPlan(stall_drain_member="m0"),
            rollout=RolloutPolicy(drain_deadline_ms=200.0),
        )
        # The canary's verify probes must not blame the new version for
        # sessions the drain deadline cut off.
        assert report.status == "completed"
        for probe in report.members[0].probes:
            assert probe["status"] != "unhealthy"
