"""Garbage collector tests: graph preservation under allocation pressure,
root coverage (locals, operand stacks, statics, interns), and statistics."""

from tests.conftest import make_vm, run_main

# A linked-list workload that allocates heavily and checks its data
# afterwards; with a small heap this forces many collections.
LIST_CHURN = """
class Node {
    int value;
    Node next;
    Node(int v, Node n) { this.value = v; this.next = n; }
}
class Main {
    static int sum(Node head) {
        int total = 0;
        while (head != null) { total = total + head.value; head = head.next; }
        return total;
    }
    static void main() {
        Node keep = null;
        for (int round = 0; round < 40; round = round + 1) {
            // garbage: a list nobody keeps
            Node junk = null;
            for (int i = 0; i < 50; i = i + 1) { junk = new Node(i, junk); }
            // live: rebuild the kept list every round
            keep = null;
            for (int i = 1; i <= 10; i = i + 1) { keep = new Node(i, keep); }
        }
        Sys.print("" + sum(keep));
    }
}
"""


class TestCollectionCorrectness:
    def test_live_data_survives_many_collections(self):
        vm = run_main(LIST_CHURN, heap_cells=6000)
        assert vm.console == ["55"]
        assert vm.collector.collections >= 3

    def test_strings_survive_collection(self):
        vm = run_main(
            """
            class Main {
                static void main() {
                    string kept = "prefix-" + 12345;
                    for (int i = 0; i < 2000; i = i + 1) {
                        string junk = "junk" + i;
                    }
                    Sys.print(kept);
                }
            }
            """,
            heap_cells=4000,
        )
        assert vm.console == ["prefix-12345"]
        assert vm.collector.collections >= 1

    def test_arrays_of_references_traced(self):
        vm = run_main(
            """
            class Box { int v; Box(int v0) { this.v = v0; } }
            class Main {
                static void main() {
                    Box[] boxes = new Box[10];
                    for (int i = 0; i < 10; i = i + 1) { boxes[i] = new Box(i * i); }
                    for (int i = 0; i < 3000; i = i + 1) { Box junk = new Box(i); }
                    int total = 0;
                    for (int i = 0; i < 10; i = i + 1) { total = total + boxes[i].v; }
                    Sys.print("" + total);
                }
            }
            """,
            heap_cells=4000,
        )
        assert vm.console == ["285"]
        assert vm.collector.collections >= 1

    def test_static_roots_traced(self):
        vm = run_main(
            """
            class Global { static string banner = "kept-in-static"; }
            class Main {
                static void main() {
                    for (int i = 0; i < 2000; i = i + 1) { string junk = "j" + i; }
                    Sys.print(Global.banner);
                }
            }
            """,
            heap_cells=4000,
        )
        assert vm.console == ["kept-in-static"]
        assert vm.collector.collections >= 1

    def test_operand_stack_roots_mid_call(self):
        # The receiver/arguments of an in-flight call live on the caller's
        # operand stack; a GC inside the callee must keep them alive.
        vm = run_main(
            """
            class Churn {
                static int burn(int n) {
                    int acc = 0;
                    for (int i = 0; i < n; i = i + 1) {
                        string junk = "x" + i;
                        acc = acc + junk.length();
                    }
                    return acc;
                }
            }
            class Pair {
                string label;
                Pair(string l) { this.label = l; }
                string combine(string other, int salt) {
                    return label + "/" + other + "/" + salt;
                }
            }
            class Main {
                static void main() {
                    Pair p = new Pair("left");
                    // The call's receiver and string argument sit on the
                    // operand stack while burn() forces collections.
                    string result = p.combine("right" + Churn.burn(1500), 7);
                    Sys.print(result);
                }
            }
            """,
            heap_cells=4000,
        )
        assert vm.collector.collections >= 1
        assert vm.console == ["left/right6390/7"]

    def test_multi_thread_stacks_are_roots(self):
        vm = run_main(
            """
            class Holder {
                string tag;
                Holder(string t) { this.tag = t; }
                void run() {
                    string mine = this.tag + "!";
                    for (int i = 0; i < 800; i = i + 1) { string junk = "j" + i; }
                    Sys.print(mine);
                }
            }
            class Main {
                static void main() {
                    Sys.spawn(new Holder("alpha"));
                    Sys.spawn(new Holder("beta"));
                }
            }
            """,
            heap_cells=4000,
        )
        assert sorted(vm.console) == ["alpha!", "beta!"]
        assert vm.collector.collections >= 1


class TestCollectorMechanics:
    def test_semispace_flip(self):
        vm = make_vm("class Main { static void main() { } }", heap_cells=4000)
        space_before = vm.heap.current_space
        vm.collect()
        assert vm.heap.current_space != space_before

    def test_collection_stats_populated(self):
        vm = run_main(LIST_CHURN, heap_cells=6000)
        stats = vm.last_gc_stats
        assert stats is not None
        assert stats.objects_copied > 0
        assert stats.cells_copied >= stats.objects_copied * 2
        assert stats.gc_time_ms > 0

    def test_garbage_is_reclaimed(self):
        vm = make_vm(
            """
            class Blob { int a; int b; int c; }
            class Main {
                static void main() {
                    for (int i = 0; i < 500; i = i + 1) { Blob junk = new Blob(); }
                }
            }
            """,
            heap_cells=4000,
        )
        vm.start_main("Main")
        vm.run(max_instructions=200_000)
        used_before = vm.heap.used_cells
        vm.collect()
        # Nothing is live after main exits except interned literals.
        assert vm.heap.used_cells < used_before

    def test_out_of_memory_traps_thread(self):
        vm = run_main(
            """
            class Node { Node next; int[] payload; }
            class Main {
                static void main() {
                    Node head = null;
                    while (true) {
                        Node n = new Node();
                        n.payload = new int[100];
                        n.next = head;
                        head = n;
                    }
                }
            }
            """,
            heap_cells=3000,
            max_instructions=500_000,
        )
        assert any("out of memory" in entry for entry in vm.trap_log)
