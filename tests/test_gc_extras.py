"""Additional collector tests: native-root protection, old-copy
reclamation after updates, intern-table maintenance, and update-map
double-copy accounting."""

import pytest

from repro.compiler.compile import compile_source
from repro.vm.natives import NativeContext
from repro.vm.vm import VM

from tests.dsu_helpers import UpdateFixture


def boot(source, heap_cells=4096):
    vm = VM(heap_cells=heap_cells)
    vm.boot(compile_source(source))
    return vm


SIMPLE = "class Box { int v; } class Main { static void main() { } }"


class TestRoots:
    def test_native_roots_updated_across_collection(self):
        vm = boot(SIMPLE)
        box = vm.registry.get("Box")
        address = vm.allocate_object(box)
        vm.objects.write_field(address, "v", 77)
        context = NativeContext(vm, thread=None)
        root = context.protect(address)
        vm.collect()
        assert root[0] != address  # moved
        assert vm.objects.read_field(root[0], "v") == 77
        context.release_roots()
        assert not vm.native_roots

    def test_unprotected_address_becomes_stale(self):
        vm = boot(SIMPLE)
        box = vm.registry.get("Box")
        address = vm.allocate_object(box)
        vm.collect()
        # The object was garbage (no roots): from-space address is dead.
        assert not vm.heap.in_space(address, vm.heap.current_space)

    def test_extra_roots_list(self):
        vm = boot(SIMPLE)
        box = vm.registry.get("Box")
        root = [vm.allocate_object(box)]
        vm.objects.write_field(root[0], "v", 5)
        vm.extra_roots.append(root)
        vm.collect()
        assert vm.objects.read_field(root[0], "v") == 5
        vm.extra_roots.remove(root)

    def test_literal_interns_survive_and_rebind(self):
        vm = boot(SIMPLE)
        address = vm.intern_literal("keep-me")
        vm.collect()
        moved = vm.literal_interns["keep-me"]
        assert moved != address
        assert vm.objects.string_payload(moved) == "keep-me"
        assert vm.intern_literal("keep-me") == moved


UPDATE_V1 = """
class Item { int a; int b; }
class Pool { static Item[] items; }
class Main {
    static int rounds;
    static void main() {
        Pool.items = new Item[50];
        for (int i = 0; i < 50; i = i + 1) { Pool.items[i] = new Item(); }
        while (rounds < 60) { Sys.sleep(10); rounds = rounds + 1; }
    }
}
"""
UPDATE_V2 = UPDATE_V1.replace("class Item { int a; int b; }",
                              "class Item { int a; int b; int c; }")


class TestUpdateHeapAccounting:
    def test_double_copy_counted_in_stats(self):
        fixture = UpdateFixture(UPDATE_V1, heap_cells=1 << 15).start()
        holder = fixture.update_at(55, UPDATE_V2)
        fixture.run(until_ms=2_000)
        assert holder["result"].succeeded
        stats = fixture.vm.last_gc_stats
        assert stats.objects_updated == 50
        assert len(stats.update_log) == 0  # "the log is deleted" (§3.4)
        # The pair count was 50 at collection time.
        assert holder["result"].objects_transformed == 50

    def test_old_copies_reclaimed_by_next_collection(self):
        fixture = UpdateFixture(UPDATE_V1, heap_cells=1 << 15).start()
        holder = fixture.update_at(55, UPDATE_V2)
        fixture.run(until_ms=200)
        assert holder["result"].succeeded
        vm = fixture.vm
        used_after_update = vm.heap.used_cells
        vm.collect()  # "the next garbage collection will naturally reclaim"
        # 50 old copies of 4 cells each disappear (plus other transients).
        assert vm.heap.used_cells <= used_after_update - 50 * 4

    def test_update_survives_when_heap_tight_but_sufficient(self):
        # Heap just big enough for the double copy: population 50*4 + dup
        # 50*(4+5) cells plus program overhead.
        fixture = UpdateFixture(UPDATE_V1, heap_cells=6000).start()
        holder = fixture.update_at(55, UPDATE_V2)
        fixture.run(until_ms=2_000)
        assert holder["result"].succeeded, holder["result"].reason
