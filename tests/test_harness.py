"""Tests for the experiment harnesses themselves (microbench, jettyperf,
tables), so the benchmark suite rests on verified plumbing."""

import pytest

from repro.apps.registry import APPS, EXPECTED_OUTCOMES, expected_outcome, update_pairs
from repro.harness.jettyperf import run_one
from repro.harness.microbench import (
    OBJECT_CELLS,
    heap_cells_for,
    populate,
    run_microbench,
)
from repro.harness.tables import (
    render_experience_table,
    render_figure6,
    render_table1,
    render_update_table,
    run_single_update,
    update_summary_rows,
)


class TestMicrobench:
    def test_populate_counts_and_anchoring(self):
        from repro.compiler.compile import compile_source
        from repro.harness.microbench import MICRO_V1
        from repro.vm.vm import VM

        vm = VM(heap_cells=heap_cells_for(500))
        vm.boot(compile_source(MICRO_V1, version="m1"))
        num_change = populate(vm, 500, 0.3)
        assert num_change == 150
        holder = vm.registry.get("Holder")
        array = vm.jtoc.read(holder.static_slots["items"])
        assert vm.objects.array_length(array) == 500
        change_count = 0
        for index in range(500):
            address = vm.objects.array_get(array, index)
            if vm.objects.class_of(address).name == "Change":
                change_count += 1
        assert change_count == 150
        # Population survives a collection (anchored by the static).
        vm.collect()
        array = vm.jtoc.read(holder.static_slots["items"])
        assert vm.objects.array_length(array) == 500

    def test_run_transforms_expected_fraction(self):
        result = run_microbench(400, 0.25)
        assert result.objects_transformed == 100
        assert result.total_pause_ms > 0
        assert result.gc_ms > 0

    def test_zero_fraction_has_no_transform_time(self):
        result = run_microbench(400, 0.0)
        assert result.objects_transformed == 0
        # The phase still pays the (empty) class-transformer dispatch, but
        # essentially nothing else.
        assert result.transform_ms < 0.01

    def test_heap_sizing_fits_worst_case(self):
        # 100% updated must fit: every object double-copied.
        result = run_microbench(800, 1.0)
        assert result.objects_transformed == 800

    def test_monotone_in_fraction(self):
        totals = [run_microbench(600, f).total_pause_ms for f in (0.0, 0.5, 1.0)]
        assert totals[0] < totals[1] < totals[2]

    def test_table_rendering(self):
        results = [run_microbench(300, f) for f in (0.0, 1.0)]
        text = render_table1(results)
        assert "Garbage collection time" in text
        assert "Total DSU pause time" in text
        figure = render_figure6(results, 300)
        assert "Figure 6" in figure


class TestJettyPerf:
    @pytest.mark.parametrize("configuration", ["stock", "jvolve", "updated"])
    def test_each_configuration_completes(self, configuration):
        run = run_one(
            configuration, seed=3,
            connections_per_second=20, duration_ms=400, warmup_ms=250,
        )
        assert run.failed == 0
        assert run.completed > 0
        assert run.throughput_mb_s > 0


class TestRegistry:
    def test_apps_expose_version_chains(self):
        assert list(APPS) == ["jetty", "javaemail", "crossftp"]
        assert len(update_pairs("jetty")) == 10
        assert len(update_pairs("javaemail")) == 9
        assert len(update_pairs("crossftp")) == 3

    def test_expected_outcomes_cover_all_updates(self):
        assert len(EXPECTED_OUTCOMES) == 22
        aborts = [o for o in EXPECTED_OUTCOMES if o.paper_outcome == "aborted"]
        assert {(o.app, o.to_version) for o in aborts} == {
            ("jetty", "5.1.3"), ("javaemail", "1.3"),
        }
        # Both paper aborts are rescued by the in-loop OSR extension: the
        # paper outcome stays "aborted", this system's expected status is
        # "applied".
        assert all(o.osr_rescued for o in aborts)
        assert all(o.expected_status == "applied" for o in aborts)
        rescued = [o for o in EXPECTED_OUTCOMES if o.osr_rescued]
        assert rescued == aborts
        assert expected_outcome("javaemail", "1.3.1", "1.3.2").paper_osr
        assert expected_outcome("crossftp", "1.07", "1.08").idle_only
        assert expected_outcome("jetty", "5.1.0", "5.1.1").paper_outcome == "applied"

    def test_expected_osr_rescued_matches_predicted_aborts(self):
        from repro.apps.registry import (
            EXPECTED_OSR_RESCUED,
            STATIC_PREDICTED_ABORTS,
            expected_osr_rescued,
        )

        assert EXPECTED_OSR_RESCUED == STATIC_PREDICTED_ABORTS
        assert expected_osr_rescued("jetty", "5.1.2", "5.1.3")
        assert not expected_osr_rescued("crossftp", "1.07", "1.08")

    def test_update_summary_rows_shape(self):
        rows = update_summary_rows("crossftp")
        assert [r["version"] for r in rows] == ["1.06", "1.07", "1.08"]
        assert all("classes_changed" in r for r in rows)
        text = render_update_table("crossftp")
        assert "1.08" in text


class TestExperienceHarness:
    def test_single_update_outcome_fields(self):
        outcome = run_single_update("jetty", "5.1.8", "5.1.9", timeout_ms=800)
        assert outcome.result.succeeded
        assert outcome.mechanism in ("immediate", "osr(1)")
        assert outcome.body_only_supported
        assert "paper: applied" in outcome.notes
        assert outcome.sessions_failed == 0
        # dsu-lint agrees this lands: no predicted abort.
        assert outcome.predicted_abort == ""
        assert outcome.prediction_matches
        text = render_experience_table([outcome])
        assert "5.1.8->5.1.9" in text
        assert "dsu-lint predicted" in text


class TestStaticPrediction:
    """Satellite of the dsu-lint analyzer: both §4 runtime aborts are
    statically predicted, and the experience table records it."""

    def test_registry_names_the_two_paper_aborts(self):
        from repro.apps.registry import (
            STATIC_PREDICTED_ABORTS,
            statically_predicted_abort,
        )

        assert STATIC_PREDICTED_ABORTS == {
            ("jetty", "5.1.2", "5.1.3"),
            ("javaemail", "1.2.4", "1.3"),
        }
        assert statically_predicted_abort("jetty", "5.1.2", "5.1.3")
        assert not statically_predicted_abort("jetty", "5.1.0", "5.1.1")

    @pytest.mark.parametrize("app,from_version,to_version", [
        ("jetty", "5.1.2", "5.1.3"),
        ("javaemail", "1.2.4", "1.3"),
    ])
    def test_runtime_abort_was_predicted(self, app, from_version, to_version):
        # Paper-fidelity mode: the rescue is off, the abort happens, and
        # the analyzer (also run without the osrmap pass) predicted it.
        outcome = run_single_update(app, from_version, to_version,
                                    timeout_ms=400, paper_fidelity=True)
        assert not outcome.result.succeeded
        assert outcome.predicted_abort == "safepoint/timeout"
        assert outcome.prediction_matches
        text = render_experience_table([outcome])
        assert "safepoint/timeout" in text
        assert "predicted 1 of 1 runtime abort(s) statically" in text

    @pytest.mark.parametrize("app,from_version,to_version", [
        ("jetty", "5.1.2", "5.1.3"),
        ("javaemail", "1.2.4", "1.3"),
    ])
    def test_rescued_update_lands_and_was_predicted_to(
        self, app, from_version, to_version
    ):
        # Default mode: the osrmap pass plans the rescue, the lint verdict
        # flips to "lands", and the runtime agrees via in-loop OSR.
        outcome = run_single_update(app, from_version, to_version,
                                    timeout_ms=400)
        assert outcome.result.succeeded
        assert outcome.result.osr_rescued
        assert outcome.predicted_abort == ""
        assert outcome.prediction_matches
        assert outcome.sessions_failed == 0
        assert outcome.mechanism.startswith("inloop-osr(")
        assert "(rescued)" in outcome.notes
        text = render_experience_table([outcome])
        assert "rescued by in-loop OSR" in text
        assert f"inloop:{outcome.result.extended_osr_frames}" in text


class TestEnduranceHarness:
    """One long-lived server survives its whole update stream; the
    bypass-eligible transitions must be invisible to traffic."""

    def test_javaemail_stream_applies_with_bypass_where_eligible(self):
        from repro.apps.registry import expected_bypass_eligible
        from repro.harness.endurance import (
            endurance_report,
            render_endurance_table,
            run_endurance,
        )

        rows = run_endurance("javaemail")
        assert [
            (row.from_version, row.to_version) for row in rows
        ] == update_pairs("javaemail")
        for row in rows:
            expected = expected_bypass_eligible(
                row.app, row.from_version, row.to_version
            )
            assert (row.mode == "bypass") == expected, (
                f"{row.from_version}->{row.to_version}: {row.mode}"
            )
            if row.mode == "bypass":
                assert row.status == "applied"
                assert row.pause_ms == 0.0
                assert row.safepoint_rounds == 0
        # The §4 abort is rescued in place by in-loop OSR: every
        # transition applies, the long-lived server never restarts.
        assert all(row.status == "applied" for row in rows)
        assert not any(row.restarted for row in rows)
        rescued = [row for row in rows if row.osr_rescued]
        assert [(r.from_version, r.to_version) for r in rescued] == [
            ("1.2.4", "1.3")
        ]
        assert rescued[0].mode == "inloop-osr"
        report = endurance_report(rows)
        assert report["problems"] == {}
        assert report["bypassed"] == 3
        assert report["osr_rescued"] == 1
        table = render_endurance_table(rows)
        assert "zero-pause immediate bypass" in table
        assert "in place via in-loop OSR" in table

    def test_javaemail_paper_fidelity_stream_restarts_on_the_abort(self):
        from repro.harness.endurance import endurance_report, run_endurance

        rows = run_endurance("javaemail", paper_fidelity=True)
        aborted = [row for row in rows if row.status != "applied"]
        assert [(r.from_version, r.to_version) for r in aborted] == [
            ("1.2.4", "1.3")
        ]
        assert aborted[0].restarted
        assert not any(row.osr_rescued for row in rows)
        report = endurance_report(rows)
        assert report["problems"] == {}

    def test_protocol_mismatch_is_a_problem(self):
        from repro.harness.endurance import TransitionRow

        row = TransitionRow(
            app="jetty", from_version="5.1.0", to_version="5.1.1",
            status="applied", mode="bypass", bc_verdict="bypass-eligible",
            pause_ms=0.0, safepoint_rounds=0, stale_frames=0,
            objects_transformed=0,
            session_failure_kinds=["protocol-mismatch"],
        )
        assert any("protocol mismatch" in p for p in row.problems())
        row.session_failure_kinds = []
        row.pause_ms = 0.1
        assert any("pause" in p for p in row.problems())
