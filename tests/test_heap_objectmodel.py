"""Unit tests for the heap and the object model."""

import pytest

from repro.compiler.compile import compile_source
from repro.vm.heap import HEAP_BASE, Heap, NULL, OutOfMemoryError
from repro.vm.objectmodel import VMTrap
from repro.vm.vm import VM


class TestHeap:
    def test_spaces_have_equal_capacity(self):
        heap = Heap(1000)
        (s0, e0), (s1, e1) = heap._space_bounds
        assert e0 - s0 == e1 - s1

    def test_allocation_starts_above_null(self):
        heap = Heap(1000)
        address = heap.allocate_raw(4)
        assert address >= HEAP_BASE

    def test_bump_allocation_is_contiguous(self):
        heap = Heap(1000)
        first = heap.allocate_raw(4)
        second = heap.allocate_raw(6)
        assert second == first + 4

    def test_allocation_zeroes_cells(self):
        heap = Heap(1000)
        address = heap.allocate_raw(4)
        heap.write(address, 99)
        heap.current_space = heap.current_space  # no flip; reuse raw region
        assert heap.cells[address + 1 : address + 4] == [0, 0, 0]

    def test_out_of_memory_raised(self):
        heap = Heap(200)
        with pytest.raises(OutOfMemoryError):
            heap.allocate_raw(10_000)

    def test_flip_switches_space(self):
        heap = Heap(1000)
        start = heap.begin_flip()
        heap.finish_flip(start + 10)
        assert heap.current_space == 1
        assert heap.bump == start + 10

    def test_too_small_heap_rejected(self):
        with pytest.raises(ValueError):
            Heap(8)


PROGRAM = """
class Animal { int legs; }
class Dog extends Animal { string name; }
class Main { static void main() { } }
"""


@pytest.fixture
def vm():
    machine = VM(heap_cells=4096)
    machine.boot(compile_source(PROGRAM))
    return machine


class TestObjectModel:
    def test_object_layout_and_field_access(self, vm):
        dog = vm.registry.get("Dog")
        address = vm.allocate_object(dog)
        assert vm.objects.class_of(address) is dog
        vm.objects.write_field(address, "legs", 4)
        assert vm.objects.read_field(address, "legs") == 4
        # inherited field occupies the first slot
        assert dog.field_slot("legs").slot == 0
        assert dog.field_slot("name").slot == 1

    def test_array_operations(self, vm):
        array_class = vm.objects.array_class("I")
        address = vm.allocate_array(array_class, 3)
        assert vm.objects.array_length(address) == 3
        vm.objects.array_set(address, 2, 42)
        assert vm.objects.array_get(address, 2) == 42

    def test_array_bounds_trap(self, vm):
        array_class = vm.objects.array_class("I")
        address = vm.allocate_array(array_class, 3)
        with pytest.raises(VMTrap):
            vm.objects.array_get(address, 3)
        with pytest.raises(VMTrap):
            vm.objects.array_set(address, -1, 0)

    def test_negative_array_size_trap(self, vm):
        array_class = vm.objects.array_class("I")
        with pytest.raises(VMTrap):
            vm.objects.alloc_array(array_class, -1)

    def test_string_payload(self, vm):
        address = vm.allocate_string("hello")
        assert vm.objects.string_payload(address) == "hello"

    def test_null_dereference_traps(self, vm):
        with pytest.raises(VMTrap):
            vm.objects.read_cell(NULL, 2)
        with pytest.raises(VMTrap):
            vm.objects.array_length(NULL)
        with pytest.raises(VMTrap):
            vm.objects.string_payload(NULL)

    def test_is_instance_hierarchy(self, vm):
        dog = vm.allocate_object(vm.registry.get("Dog"))
        assert vm.objects.is_instance(dog, "LDog;")
        assert vm.objects.is_instance(dog, "LAnimal;")
        assert vm.objects.is_instance(dog, "LObject;")
        assert not vm.objects.is_instance(dog, "LMain;")

    def test_is_instance_strings_and_arrays(self, vm):
        text = vm.allocate_string("x")
        assert vm.objects.is_instance(text, "S")
        assert vm.objects.is_instance(text, "LObject;")
        array = vm.allocate_array(vm.objects.array_class("I"), 1)
        assert vm.objects.is_instance(array, "[I")
        assert not vm.objects.is_instance(array, "[Z")
        assert vm.objects.is_instance(array, "LObject;")

    def test_null_is_instance_of_nothing_but_casts_to_anything(self, vm):
        assert not vm.objects.is_instance(NULL, "LDog;")
        vm.objects.checkcast(NULL, "LDog;")  # no trap

    def test_bad_cast_traps(self, vm):
        animal = vm.allocate_object(vm.registry.get("Animal"))
        with pytest.raises(VMTrap):
            vm.objects.checkcast(animal, "LDog;")

    def test_object_size_cells(self, vm):
        dog = vm.allocate_object(vm.registry.get("Dog"))
        assert vm.objects.object_size_cells(dog) == 2 + 2
        array = vm.allocate_array(vm.objects.array_class("I"), 5)
        assert vm.objects.object_size_cells(array) == 3 + 5
        text = vm.allocate_string("abc")
        assert vm.objects.object_size_cells(text) == 3

    def test_string_payloads_are_deduplicated(self, vm):
        first = vm.allocate_string("shared-payload")
        second = vm.allocate_string("shared-payload")
        assert first != second  # distinct objects
        payload_cell = 2
        assert vm.heap.read(first + payload_cell) == vm.heap.read(second + payload_cell)

    def test_literal_interning_returns_same_object(self, vm):
        first = vm.intern_literal("lit")
        second = vm.intern_literal("lit")
        assert first == second
