"""Unit tests for the opt-tier inliner and on-stack replacement."""

import pytest

from repro.bytecode.instructions import Instr
from repro.compiler.compile import compile_prelude, compile_source
from repro.vm.inlining import INLINE_MAX_INSTRUCTIONS, inline_method
from repro.vm.osr import OSRError, can_osr, osr_replace
from repro.vm.vm import VM

from tests.conftest import run_main


def compiled(source):
    classfiles = dict(compile_prelude())
    classfiles.update(compile_source(source))
    return classfiles


class TestInliner:
    def test_small_static_callee_inlined(self):
        classfiles = compiled(
            """
            class A {
                static int twice(int x) { return x + x; }
                static int go(int x) { return A.twice(x) + 1; }
            }
            """
        )
        method = classfiles["A"].get_method("go", "(I)I")
        result = inline_method(classfiles, "A", method)
        assert ("A", "twice", "(I)I") in result.inlined
        ops = [i.op for i in result.instructions]
        assert "INVOKESTATIC" not in ops

    def test_large_callee_not_inlined(self):
        body = " y = y + x;" * (INLINE_MAX_INSTRUCTIONS + 4)
        classfiles = compiled(
            """
            class A {
                static int big(int x) { int y = 0; %s return y; }
                static int go(int x) { return A.big(x); }
            }
            """ % body
        )
        method = classfiles["A"].get_method("go", "(I)I")
        result = inline_method(classfiles, "A", method)
        assert not result.inlined

    def test_recursive_callee_not_inlined_into_itself(self):
        classfiles = compiled(
            """
            class A {
                static int f(int x) { if (x < 1) { return 0; } return A.f(x - 1); }
            }
            """
        )
        method = classfiles["A"].get_method("f", "(I)I")
        result = inline_method(classfiles, "A", method)
        assert ("A", "f", "(I)I") not in result.inlined

    def test_native_callee_not_inlined(self):
        classfiles = compiled(
            """
            class A { static int go() { return Sys.time(); } }
            """
        )
        method = classfiles["A"].get_method("go", "()I")
        result = inline_method(classfiles, "A", method)
        assert not result.inlined

    def test_constructors_not_inlined(self):
        classfiles = compiled(
            """
            class Box { int v; Box(int v0) { this.v = v0; } }
            class A { static Box go() { return new Box(1); } }
            """
        )
        method = classfiles["A"].get_method("go", "()LBox;")
        result = inline_method(classfiles, "A", method)
        assert not result.inlined

    def test_max_locals_grow_by_callee_frame(self):
        classfiles = compiled(
            """
            class A {
                static int helper(int x) { int t = x * 2; return t; }
                static int go(int x) { return A.helper(x); }
            }
            """
        )
        method = classfiles["A"].get_method("go", "(I)I")
        helper = classfiles["A"].get_method("helper", "(I)I")
        result = inline_method(classfiles, "A", method)
        assert result.max_locals == method.max_locals + helper.max_locals

    def test_inlined_code_computes_same_result(self):
        # End-to-end: a hot method with nested inlinable helpers produces
        # the same results at both tiers.
        vm = run_main(
            """
            class M {
                static int inc(int x) { return x + 1; }
                static int twice(int x) { return M.inc(x) + M.inc(x); }
            }
            class Main {
                static void main() {
                    int total = 0;
                    for (int i = 0; i < 300; i = i + 1) { total = total + M.twice(i); }
                    Sys.print("" + total);
                }
            }
            """
        )
        # sum of 2*(i+1) for i in 0..299 = 2*(300*301/2) = 90300
        assert vm.console == ["90300"]
        entry = vm.methods.lookup("M", "twice", "(I)I")
        assert entry.opt_code is not None
        assert ("M", "inc", "(I)I") in entry.opt_code.inlined


OSR_PROGRAM = """
class Config { static int level = 3; }
class W {
    static int work(int n) {
        int acc = 0;
        for (int i = 0; i < n; i = i + 1) { acc = acc + Config.level; }
        return acc;
    }
}
class Main { static void main() { Sys.print("" + W.work(5)); } }
"""


class TestOSR:
    def _vm_with_frame(self):
        from repro.vm.frames import Frame, VMThread

        vm = VM()
        vm.boot(compile_source(OSR_PROGRAM))
        entry = vm.methods.lookup("W", "work", "(I)I")
        code = vm.jit.compile_base(entry)
        frame = Frame(code, [5], 0)
        thread = VMThread()
        thread.frames.append(frame)
        vm.threads.append(thread)
        return vm, entry, frame, thread

    def test_base_frame_is_osr_capable(self):
        vm, entry, frame, _ = self._vm_with_frame()
        assert can_osr(frame)

    def test_osr_swaps_code_preserving_state(self):
        vm, entry, frame, thread = self._vm_with_frame()
        # advance a few instructions
        vm.interpreter.run_thread(thread, 6)
        pc = frame.pc
        locals_before = list(frame.locals)
        stack_before = list(frame.stack)
        old_code = frame.code
        osr_replace(vm, frame)
        assert frame.code is not old_code
        assert frame.pc == pc
        assert frame.locals == locals_before
        assert frame.stack == stack_before
        # thread completes correctly on the new code
        vm.run(max_instructions=10_000)
        assert thread.result == 15  # 5 iterations x Config.level (3)

    def test_opt_frames_refuse_osr(self):
        from repro.vm.frames import Frame

        vm, entry, _, _ = self._vm_with_frame()
        opt = vm.jit.compile_opt(entry)
        frame = Frame(opt, [5], 0)
        assert not can_osr(frame)
        with pytest.raises(OSRError):
            osr_replace(vm, frame)

    def test_stale_bytecode_refuses_osr(self):
        vm, entry, frame, _ = self._vm_with_frame()
        from repro.bytecode.classfile import MethodInfo

        entry.replace_bytecode(entry.info)  # bump version
        assert not can_osr(frame)
        with pytest.raises(OSRError):
            osr_replace(vm, frame)
