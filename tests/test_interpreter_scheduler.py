"""Unit tests for the interpreter and the cooperative scheduler."""

import pytest

from repro.compiler.compile import compile_source
from repro.vm.vm import VM

from tests.conftest import make_vm, run_main


class TestInterpreterSemantics:
    def test_integer_division_truncates_toward_zero(self):
        vm = run_main(
            """
            class Main {
                static void main() {
                    Sys.print("" + (7 / 2) + "," + ((0 - 7) / 2));
                    Sys.print("" + (7 % 2) + "," + ((0 - 7) % 2));
                }
            }
            """
        )
        assert vm.console == ["3,-3", "1,-1"]

    def test_short_circuit_evaluation_skips_side_effects(self):
        vm = run_main(
            """
            class Main {
                static int calls;
                static bool bump() { calls = calls + 1; return true; }
                static void main() {
                    bool a = false && bump();
                    bool b = true || bump();
                    Sys.print("" + calls);
                }
            }
            """
        )
        assert vm.console == ["0"]

    def test_string_concat_coerces_ints_and_bools(self):
        vm = run_main(
            """
            class Main {
                static void main() { Sys.print("v=" + 3 + ":" + true); }
            }
            """
        )
        assert vm.console == ["v=3:true"]

    def test_null_string_concat_renders_null(self):
        vm = run_main(
            """
            class Main {
                static void main() { string s = null; Sys.print("x" + s); }
            }
            """
        )
        assert vm.console == ["xnull"]

    def test_deep_recursion_overflows_cleanly(self):
        vm = run_main(
            """
            class Main {
                static int down(int n) { return down(n + 1); }
                static void main() { down(0); }
            }
            """
        )
        assert any("stack overflow" in line for line in vm.trap_log)

    def test_obsolete_method_call_traps(self):
        # Directly mark an entry obsolete and call it: the guard fires.
        vm = make_vm(
            """
            class T { static void gone() { } }
            class Main { static void main() { T.gone(); } }
            """
        )
        vm.methods.lookup("T", "gone", "()V").obsolete = True
        vm.start_main("Main")
        vm.run(max_instructions=10_000)
        assert any("obsolete" in line for line in vm.trap_log)

    def test_thread_result_captured(self):
        vm = make_vm("class Main { static int main2() { return 41; } }")
        entry = vm.methods.lookup("Main", "main2", "()I")
        result = vm.run_static_method_synchronously(entry)
        assert result == 41


class TestScheduler:
    def test_quantum_interleaves_threads_fairly(self):
        vm = run_main(
            """
            class Busy {
                int id;
                Busy(int id0) { this.id = id0; }
                void run() {
                    for (int i = 0; i < 5; i = i + 1) {
                        Sys.print(id + "." + i);
                    }
                }
            }
            class Main {
                static void main() {
                    Sys.spawn(new Busy(1));
                    Sys.spawn(new Busy(2));
                }
            }
            """,
            quantum=30,  # small quantum forces interleaving
        )
        order = vm.console
        assert sorted(order) == sorted(
            [f"{t}.{i}" for t in (1, 2) for i in range(5)]
        )
        # With a small quantum, output from the two threads interleaves.
        first_thread = order[0].split(".")[0]
        assert any(not line.startswith(first_thread) for line in order[:6])

    def test_sys_yield_parks_thread(self):
        vm = run_main(
            """
            class Poller {
                void run() {
                    for (int i = 0; i < 3; i = i + 1) { Sys.print("p" + i); }
                }
            }
            class Main {
                static void main() {
                    Sys.spawn(new Poller());
                    Sys.yield();
                    Sys.print("after-yield");
                }
            }
            """,
            quantum=10_000,  # big quantum: only the explicit yield switches
        )
        # The poller got to run before main's post-yield print.
        assert vm.console.index("p0") < vm.console.index("after-yield")

    def test_run_until_ms_stops_at_deadline(self):
        vm = make_vm(
            """
            class Main {
                static void main() { while (true) { Sys.sleep(10); } }
            }
            """
        )
        vm.start_main("Main")
        vm.run(until_ms=120)
        assert 120 <= vm.clock.now_ms < 140
        assert vm.threads  # still alive, just paused

    def test_idle_vm_returns_instead_of_spinning(self):
        vm = make_vm("class Main { static void main() { } }")
        vm.start_main("Main")
        vm.run()  # returns promptly once everything is dead
        assert not vm.threads

    def test_blocked_thread_wakes_on_condition(self):
        vm = make_vm(
            """
            class Echo {
                void run() {
                    int lfd = Net.listen(9);
                    int fd = Net.accept(lfd);
                    Net.write(fd, Net.readLine(fd) + "!\\n");
                }
            }
            class Main { static void main() { Sys.spawn(new Echo()); } }
            """
        )
        vm.start_main("Main")
        vm.run(until_ms=20)  # server parks in accept
        endpoint = vm.network.client_connect(9)
        endpoint.send("hi\n")
        vm.run(until_ms=60)
        assert endpoint.receive_line() == "hi!"

    def test_trapped_thread_does_not_stop_others(self):
        vm = run_main(
            """
            class Crasher { void run() { int z = 0; int x = 1 / z; } }
            class Main {
                static void main() {
                    Sys.spawn(new Crasher());
                    Sys.sleep(20);
                    Sys.print("survived");
                }
            }
            """
        )
        assert vm.console == ["survived"]
        assert any("division" in line for line in vm.trap_log)
