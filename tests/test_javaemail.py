"""JavaEmailServer application tests: mail flow end-to-end and the paper's
§4.3 update narrative (1.3 aborts; 1.3.2 and 1.3.3 need OSR)."""

import pytest

from repro.apps.javaemail.versions import (
    MAIN_CLASS,
    POP3_PORT,
    SMTP_PORT,
    TRANSFORMER_OVERRIDES,
    VERSIONS,
)
from repro.harness.updates import AppDriver
from repro.net.loadgen import ScriptedSession
from repro.net.popclient import fetch_script, stat_script
from repro.net.smtpclient import send_mail_script


def make_driver():
    return AppDriver(
        "javaemail", VERSIONS, MAIN_CLASS,
        transformer_overrides=TRANSFORMER_OVERRIDES,
    )


def send_and_fetch(driver, recipient="alice@example.org", pop_user="alice",
                   pop_pass="apass", send_at=30, fetch_at=400):
    smtp = ScriptedSession(
        driver.vm, SMTP_PORT,
        send_mail_script("bob@example.org", recipient, ["hello there", "bye"]),
    ).start(send_at)
    pop = ScriptedSession(
        driver.vm, POP3_PORT, fetch_script(pop_user, pop_pass)
    ).start(fetch_at)
    return smtp, pop


class TestMailFlow:
    def test_send_then_retrieve(self):
        driver = make_driver().boot("1.2.1")
        smtp, pop = send_and_fetch(driver)
        driver.run(until_ms=2_500)
        assert smtp.succeeded, smtp.failed
        assert pop.succeeded, pop.failed
        assert any("hello there" in line for line in pop.transcript)

    def test_forwarding_delivers_copy(self):
        # bob's account forwards to alice: mail sent to bob shows up for
        # alice as well.
        driver = make_driver().boot("1.2.1")
        smtp, pop = send_and_fetch(
            driver, recipient="bob@example.org", pop_user="alice", pop_pass="apass"
        )
        driver.run(until_ms=2_500)
        assert smtp.succeeded and pop.succeeded, (smtp.failed, pop.failed)
        assert any("hello there" in line for line in pop.transcript)

    def test_bad_pop_login(self):
        driver = make_driver().boot("1.2.1")
        script = [
            ("expect", "+OK jes pop3"),
            ("send", "USER alice"),
            ("expect", "+OK"),
            ("send", "PASS wrong"),
            ("expect", "-ERR"),
            ("send", "QUIT"),
            ("expect", "+OK bye"),
            ("close",),
        ]
        session = ScriptedSession(driver.vm, POP3_PORT, script).start(30)
        driver.run(until_ms=2_000)
        assert session.succeeded, session.failed

    def test_mail_flow_on_every_version(self):
        # Every release must remain a working mail server.
        for version in VERSIONS:
            driver = make_driver().boot(version)
            smtp, pop = send_and_fetch(driver)
            driver.run(until_ms=2_500)
            assert smtp.succeeded, (version, smtp.failed)
            assert pop.succeeded, (version, pop.failed)
            assert any("hello there" in line for line in pop.transcript), version

    def test_14_relay_policy(self):
        driver = make_driver().boot("1.4")
        script = [
            ("expect", "220"),
            ("send", "HELO client"),
            ("expect", "250"),
            ("send", "MAIL FROM:<spammer@evil.example>"),
            ("expect", "250"),
            ("send", "RCPT TO:<victim@elsewhere.example>"),
            ("expect", "550"),
            ("send", "QUIT"),
            ("expect", "221"),
            ("close",),
        ]
        session = ScriptedSession(driver.vm, SMTP_PORT, script).start(30)
        driver.run(until_ms=2_000)
        assert session.succeeded, session.failed


class TestUpdates:
    def _apply(self, from_version, to_version, request_at=300, timeout_ms=3_000,
               until_ms=6_000, inloop_osr="auto"):
        driver = make_driver().boot(from_version)
        # light traffic before the update
        smtp, pop = send_and_fetch(driver)
        holder = driver.request_update_at(request_at, to_version, timeout_ms,
                                          inloop_osr=inloop_osr)
        driver.run(until_ms=until_ms)
        return driver, holder["result"], (smtp, pop)

    def test_122_body_only_applies_immediately(self):
        driver, result, sessions = self._apply("1.2.1", "1.2.2")
        assert result.succeeded, result.reason
        assert not result.used_osr
        assert all(s.succeeded for s in sessions)

    def test_123_class_update_applies(self):
        driver, result, sessions = self._apply("1.2.2", "1.2.3")
        assert result.succeeded, result.reason
        assert all(s.succeeded for s in sessions)

    def test_13_config_rework_rescued_by_inloop_osr(self):
        # The processors' run() loops change and are never off-stack (the
        # paper's §4.3 abort) — but the osrmap pass proves remaps for all
        # of them, so the engine OSRs the spinning frames in place.
        driver, result, sessions = self._apply(
            "1.2.4", "1.3", timeout_ms=1_000, until_ms=5_000
        )
        assert result.succeeded, result.reason
        assert result.osr_rescued
        assert result.extended_osr_frames > 0
        assert not result.osr_plans_refused
        # Mail flows on the NEW version after the in-place rescue.
        smtp2 = ScriptedSession(
            driver.vm, SMTP_PORT,
            send_mail_script("bob@example.org", "alice@example.org", ["post-rescue"]),
        ).start(5_100)
        driver.run(until_ms=7_000)
        assert smtp2.succeeded, smtp2.failed

    def test_13_paper_fidelity_aborts(self):
        driver, result, sessions = self._apply(
            "1.2.4", "1.3", timeout_ms=1_000, until_ms=5_000,
            inloop_osr="off",
        )
        assert result.status == "aborted"
        assert "timeout" in result.reason
        blocking = {
            "SMTPProcessor.run()V",
            "Pop3Processor.run()V",
            "SMTPSender.run()V",
        }
        assert blocking & result.blockers_seen
        # The server is unharmed: mail still flows on the old version.
        smtp2 = ScriptedSession(
            driver.vm, SMTP_PORT,
            send_mail_script("bob@example.org", "alice@example.org", ["post-abort"]),
        ).start(5_100)
        driver.run(until_ms=7_000)
        assert smtp2.succeeded, smtp2.failed

    def test_132_paper_example_uses_osr(self):
        driver, result, sessions = self._apply("1.3.1", "1.3.2")
        assert result.succeeded, result.reason
        assert result.used_osr
        # Only SMTPSender.run still needs OSR: the semantic-diff minimizer
        # proves the POP3/SMTP processor loops' baked User offsets stable
        # (the Figure-3 field change hits the *last* flattened slot), so
        # they escape category 2 and keep running old compiled code.
        assert result.osr_frames >= 1
        assert all(s.succeeded for s in sessions)
        # Forwarding still works after the transformation: bob's forward
        # list was rebuilt as EmailAddress objects by the Figure-3
        # transformer.
        smtp2 = ScriptedSession(
            driver.vm, SMTP_PORT,
            send_mail_script("carol@example.org", "bob@example.org", ["fwd me"]),
        ).start(driver.vm.clock.now_ms + 50)
        pop2 = ScriptedSession(
            driver.vm, POP3_PORT, fetch_script("alice", "apass", message_index=2)
        ).start(driver.vm.clock.now_ms + 500)
        driver.run(until_ms=driver.vm.clock.now_ms + 2_000)
        assert smtp2.succeeded, smtp2.failed
        assert pop2.succeeded, pop2.failed
        assert any("fwd me" in line for line in pop2.transcript)

    def test_133_debug_knob_uses_osr(self):
        driver, result, sessions = self._apply("1.3.2", "1.3.3")
        assert result.succeeded, result.reason
        assert result.used_osr
        assert all(s.succeeded for s in sessions)

    def test_134_applies(self):
        driver, result, sessions = self._apply("1.3.3", "1.3.4")
        assert result.succeeded, result.reason
        assert all(s.succeeded for s in sessions)

    def test_14_applies_and_message_ids_flow(self):
        driver, result, sessions = self._apply("1.3.4", "1.4")
        assert result.succeeded, result.reason
        assert all(s.succeeded for s in sessions)
        # New messages get ids from the new MessageIdGenerator.
        smtp2 = ScriptedSession(
            driver.vm, SMTP_PORT,
            send_mail_script("bob@example.org", "alice@example.org", ["with id"]),
        ).start(driver.vm.clock.now_ms + 50)
        driver.run(until_ms=driver.vm.clock.now_ms + 1_500)
        assert smtp2.succeeded, smtp2.failed
        generator = driver.vm.registry.get("MessageIdGenerator")
        assert driver.vm.jtoc.read(generator.static_slots["counter"]) >= 1


class TestSpecs:
    def test_paper_shape_of_spec_classification(self):
        driver = make_driver()
        # 1.2.1 -> 1.2.2 is body-only.
        prepared = driver.prepare_pair("1.2.1", "1.2.2")
        assert prepared.spec.method_body_only()
        # 1.3.1 -> 1.3.2 changes User's signature and makes the processor
        # loops indirect. The minimizer then proves Pop3Processor.run's
        # baked User.username offset stable (the changed field occupies
        # the last flattened slot) so it escapes; SMTPSender.run touches
        # the changed accessors and stays restricted.
        prepared = driver.prepare_pair("1.3.1", "1.3.2")
        spec = prepared.spec
        assert "User" in spec.class_updates
        assert "EmailAddress" in spec.added_classes
        indirect_names = {key[0] + "." + key[1] for key in spec.indirect_methods}
        assert "SMTPSender.run" in indirect_names
        escaped_names = {key[0] + "." + key[1] for key in spec.escaped_indirect}
        assert "Pop3Processor.run" in escaped_names
        assert not spec.method_body_only()
