"""Jetty application tests: HTTP serving, thread-pool behaviour, and the
paper's §4.2 update narrative (all updates apply except 5.1.3)."""

import pytest

from repro.apps.jetty.versions import HTTP_PORT, MAIN_CLASS, VERSIONS
from repro.harness.updates import AppDriver
from repro.net.httpclient import HttpConnectionClient, HttperfLoad


def make_driver(**kwargs):
    return AppDriver("jetty", VERSIONS, MAIN_CLASS, **kwargs)


class TestHttpServing:
    def test_serves_file(self):
        driver = make_driver().boot("5.1.0")
        client = HttpConnectionClient(driver.vm, HTTP_PORT, "/index.html", 1).start(30)
        driver.run(until_ms=2_000)
        assert client.succeeded, client.failed
        assert client.statuses == [200]
        assert client.bytes_received > 20

    def test_404_for_missing_file(self):
        driver = make_driver().boot("5.1.0")
        client = HttpConnectionClient(driver.vm, HTTP_PORT, "/nope.html", 1).start(30)
        driver.run(until_ms=2_000)
        assert client.succeeded, client.failed
        assert client.statuses == [404]

    def test_keepalive_serial_requests(self):
        driver = make_driver().boot("5.1.0")
        client = HttpConnectionClient(driver.vm, HTTP_PORT, "/file.bin", 5).start(30)
        driver.run(until_ms=3_000)
        assert client.succeeded, client.failed
        assert client.statuses == [200] * 5
        assert client.bytes_received >= 5 * 2048

    def test_directory_maps_to_index_after_511(self):
        driver = make_driver().boot("5.1.1")
        client = HttpConnectionClient(driver.vm, HTTP_PORT, "/", 1).start(30)
        driver.run(until_ms=2_000)
        assert client.succeeded, client.failed
        assert client.statuses == [200]

    def test_pool_threads_handle_concurrent_connections(self):
        driver = make_driver().boot("5.1.0")
        clients = [
            HttpConnectionClient(driver.vm, HTTP_PORT, "/file.bin", 3).start(30 + i)
            for i in range(6)
        ]
        driver.run(until_ms=4_000)
        assert all(c.succeeded for c in clients), [c.failed for c in clients]

    def test_every_version_serves(self):
        for version in VERSIONS:
            driver = make_driver().boot(version)
            client = HttpConnectionClient(driver.vm, HTTP_PORT, "/file.bin", 2).start(30)
            driver.run(until_ms=2_500)
            assert client.succeeded, (version, client.failed)
            assert client.statuses == [200, 200], version

    def test_httperf_load_reports(self):
        driver = make_driver().boot("5.1.5")
        load = HttperfLoad(
            driver.vm, HTTP_PORT, "/file.bin",
            connections_per_second=50, duration_ms=500, start_ms=50,
        )
        driver.run(until_ms=3_000)
        assert load.completed_connections == len(load.clients), load.failure_reasons() if hasattr(load, "failure_reasons") else [c.failed for c in load.failed_connections]
        assert load.throughput_mb_per_s() > 0
        median, q1, q3 = load.latency_summary()
        assert q1 <= median <= q3


class TestUpdates:
    def _apply(self, from_version, to_version, request_at=300, timeout_ms=3_000,
               until_ms=5_000, load=True, inloop_osr="auto"):
        driver = make_driver().boot(from_version)
        clients = []
        if load:
            # periodic light traffic across the update window
            for i in range(6):
                clients.append(
                    HttpConnectionClient(driver.vm, HTTP_PORT, "/file.bin", 3)
                    .start(50 + 120 * i)
                )
        holder = driver.request_update_at(request_at, to_version, timeout_ms,
                                          inloop_osr=inloop_osr)
        driver.run(until_ms=until_ms)
        return driver, holder["result"], clients

    def test_511_body_only(self):
        driver, result, clients = self._apply("5.1.0", "5.1.1")
        assert result.succeeded, result.reason
        assert all(c.succeeded for c in clients), [c.failed for c in clients]

    def test_512_signature_change(self):
        driver, result, clients = self._apply("5.1.1", "5.1.2")
        assert result.succeeded, result.reason
        assert all(c.succeeded for c in clients)

    def test_513_rescued_by_inloop_osr(self):
        # The paper's §4.2 abort: acceptSocket/PoolThread.run never leave
        # the stack. The osrmap pass proves a frame remap for both, so
        # after the retry budget burns down the engine OSRs the blocking
        # loop frames onto the new bodies and the update lands in place.
        driver, result, clients = self._apply(
            "5.1.2", "5.1.3", timeout_ms=1_000, until_ms=5_000
        )
        assert result.succeeded, result.reason
        assert result.osr_rescued
        assert result.extended_osr_frames > 0
        assert result.osr_plans_verified > 0
        assert not result.osr_plans_refused
        assert all(c.succeeded for c in clients), [c.failed for c in clients]
        # server healthy on the NEW version
        late = HttpConnectionClient(driver.vm, HTTP_PORT, "/file.bin", 2).start(
            driver.vm.clock.now_ms + 50
        )
        driver.run(until_ms=driver.vm.clock.now_ms + 1_500)
        assert late.succeeded, late.failed

    def test_513_paper_fidelity_never_reaches_safe_point(self):
        driver, result, clients = self._apply(
            "5.1.2", "5.1.3", timeout_ms=1_000, until_ms=5_000,
            inloop_osr="off",
        )
        assert result.status == "aborted"
        assert "timeout" in result.reason
        assert {"ThreadedServer.acceptSocket(I)V", "PoolThread.run()V"} & \
            result.blockers_seen or "ThreadedServer.run()V" in result.blockers_seen
        # server still healthy on the old version
        late = HttpConnectionClient(driver.vm, HTTP_PORT, "/file.bin", 2).start(
            driver.vm.clock.now_ms + 50
        )
        driver.run(until_ms=driver.vm.clock.now_ms + 1_500)
        assert late.succeeded, late.failed

    def test_514_through_517_class_updates(self):
        for from_v, to_v in [("5.1.3", "5.1.4"), ("5.1.4", "5.1.5"),
                             ("5.1.5", "5.1.6"), ("5.1.6", "5.1.7")]:
            driver, result, clients = self._apply(from_v, to_v)
            assert result.succeeded, (from_v, to_v, result.reason)
            assert all(c.succeeded for c in clients), (from_v, to_v)

    def test_518_to_5110_body_only(self):
        for from_v, to_v in [("5.1.7", "5.1.8"), ("5.1.8", "5.1.9"),
                             ("5.1.9", "5.1.10")]:
            driver, result, clients = self._apply(from_v, to_v)
            assert result.succeeded, (from_v, to_v, result.reason)
            assert all(c.succeeded for c in clients), (from_v, to_v)

    def test_515_to_516_keeps_serving_after_update(self):
        # The Figure-5 pair: after the update the server serves identically.
        driver, result, clients = self._apply("5.1.5", "5.1.6")
        assert result.succeeded, result.reason
        after = HttpConnectionClient(driver.vm, HTTP_PORT, "/file.bin", 5).start(
            driver.vm.clock.now_ms + 50
        )
        driver.run(until_ms=driver.vm.clock.now_ms + 2_000)
        assert after.succeeded, after.failed
        assert after.statuses == [200] * 5
