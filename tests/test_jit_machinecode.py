"""Unit tests for the JIT resolution layer and method-registry semantics —
the machinery whose baked offsets make category-2 methods real."""

import pytest

from repro.bytecode.classfile import MethodInfo
from repro.compiler.compile import compile_source
from repro.vm.gc import StackMapMismatch
from repro.vm.machinecode import BASE_TIER, OPT_TIER
from repro.vm.vm import VM

SOURCE = """
class Point {
    int x;
    int y;
    static int made;
    Point(int x0) { this.x = x0; Point.made = Point.made + 1; }
    int getX() { return x; }
    int getY() { return y; }
}
class Shape {
    int area() { return 0; }
}
class Square extends Shape {
    int side;
    int area() { return side * side; }
}
class Calls {
    static int go(Point p) { return p.getX() + Point.made; }
}
class Main { static void main() { } }
"""


@pytest.fixture
def vm():
    machine = VM()
    machine.boot(compile_source(SOURCE, version="t"))
    return machine


class TestResolution:
    def test_getfield_bakes_cell_offset(self, vm):
        entry = vm.methods.lookup("Point", "getX", "()I")
        code = vm.jit.compile_base(entry)
        getfields = [i for i in code.instructions if i.op == "GETFIELD"]
        point = vm.registry.get("Point")
        assert getfields[0].a == point.field_slot("x").cell_offset

    def test_getstatic_bakes_jtoc_index(self, vm):
        entry = vm.methods.lookup("Calls", "go", "(LPoint;)I")
        code = vm.jit.compile_base(entry)
        getstatics = [i for i in code.instructions if i.op == "GETSTATIC"]
        point = vm.registry.get("Point")
        assert getstatics[0].a == point.static_slots["made"]

    def test_invokevirtual_bakes_tib_slot(self, vm):
        entry = vm.methods.lookup("Calls", "go", "(LPoint;)I")
        code = vm.jit.compile_base(entry)
        virtuals = [i for i in code.instructions if i.op == "INVOKEVIRTUAL"]
        point = vm.registry.get("Point")
        assert virtuals[0].a == point.tib.slot_of("getX", "()I")
        assert virtuals[0].b == 0  # argc

    def test_referenced_classes_recorded(self, vm):
        entry = vm.methods.lookup("Calls", "go", "(LPoint;)I")
        code = vm.jit.compile_base(entry)
        assert "Point" in code.referenced_classes

    def test_resolution_is_one_to_one(self, vm):
        entry = vm.methods.lookup("Calls", "go", "(LPoint;)I")
        code = vm.jit.compile_base(entry)
        assert len(code.instructions) == len(entry.info.instructions)
        assert code.tier == BASE_TIER


class TestTIB:
    def test_override_shares_slot(self, vm):
        shape = vm.registry.get("Shape")
        square = vm.registry.get("Square")
        slot = shape.tib.slot_of("area", "()I")
        assert square.tib.slot_of("area", "()I") == slot
        assert square.tib.methods[slot].owner is square
        assert shape.tib.methods[slot].owner is shape

    def test_invalidate_all_clears_code(self, vm):
        shape = vm.registry.get("Shape")
        entry = shape.tib.lookup("area", "()I")
        vm.jit.ensure_compiled(entry)
        slot = shape.tib.slot_of("area", "()I")
        shape.tib.code[slot] = entry.active_code()
        shape.tib.invalidate_all()
        assert shape.tib.code[slot] is None

    def test_lookup_missing_returns_none(self, vm):
        shape = vm.registry.get("Shape")
        assert shape.tib.lookup("nope", "()V") is None


class TestMethodEntryLifecycle:
    def test_replace_bytecode_resets_everything(self, vm):
        entry = vm.methods.lookup("Point", "getX", "()I")
        vm.jit.compile_base(entry)
        entry.invocations = 99
        new_info = MethodInfo(
            "getX", "()I", False, False, "public",
            entry.info.max_locals, list(entry.info.instructions),
        )
        entry.replace_bytecode(new_info)
        assert entry.base_code is None and entry.opt_code is None
        assert entry.invocations == 0
        assert entry.bytecode_version == 1

    def test_active_code_prefers_opt(self, vm):
        entry = vm.methods.lookup("Point", "getX", "()I")
        base = vm.jit.compile_base(entry)
        assert entry.active_code() is base
        opt = vm.jit.compile_opt(entry)
        assert entry.active_code() is opt
        assert opt.tier == OPT_TIER

    def test_rekey_follows_owner_rename(self, vm):
        entry = vm.methods.lookup("Point", "getX", "()I")
        point = vm.registry.get("Point")
        vm.registry.rename(point, "old_Point")
        vm.methods.rekey(entry)
        assert vm.methods.lookup("old_Point", "getX", "()I") is entry
        assert vm.methods.lookup("Point", "getX", "()I") is None

    def test_registry_lookup_by_id(self, vm):
        entry = vm.methods.lookup("Point", "getX", "()I")
        assert vm.methods.by_id(entry.id) is entry


class TestDispatchCacheRefresh:
    def test_tib_cache_follows_tier_promotion(self, vm):
        # Dispatch through the TIB caches base code; after promotion the
        # cache is refreshed on the next call (the interpreter's identity
        # check against active_code).
        source = """
        class Hot { int f() { return 1; } }
        class Main {
            static void main() {
                Hot h = new Hot();
                int acc = 0;
                for (int i = 0; i < 120; i = i + 1) { acc = acc + h.f(); }
                Sys.print("" + acc);
            }
        }
        """
        machine = VM()
        machine.boot(compile_source(source))
        machine.start_main("Main")
        machine.run(max_instructions=1_000_000)
        assert machine.console == ["120"]
        hot = machine.registry.get("Hot")
        entry = hot.tib.lookup("f", "()I")
        assert entry.opt_code is not None
        slot = hot.tib.slot_of("f", "()I")
        assert hot.tib.code[slot] is entry.opt_code


class TestStackMapSafetyNet:
    def test_corrupted_frame_detected_by_gc(self, vm):
        from repro.vm.frames import Frame, VMThread

        entry = vm.methods.lookup("Calls", "go", "(LPoint;)I")
        code = vm.jit.ensure_compiled(entry)
        frame = Frame(code, [0], 0)
        frame.stack.append(123)  # junk the verifier never promised
        thread = VMThread()
        thread.frames.append(frame)
        vm.threads.append(thread)
        with pytest.raises(StackMapMismatch, match="depth"):
            vm.collect()
        vm.threads.remove(thread)
