"""Extra front-end coverage: symbol-table details, overload ambiguity,
multi-dimensional arrays, the prelude, and the plots helper."""

import pytest

from repro.harness.plots import ascii_chart
from repro.lang.errors import TypeError_
from repro.lang.parser import parse
from repro.lang.prelude import PRELUDE_CLASS_NAMES, parse_prelude
from repro.lang.symbols import ProgramSymbols
from repro.lang.typechecker import typecheck
from repro.lang.types import INT, STRING, class_type

from tests.conftest import run_main


class TestSymbols:
    def _symbols(self, source):
        return ProgramSymbols.build(parse(source))

    def test_field_lookup_walks_hierarchy(self):
        symbols = self._symbols(
            "class A { int x; } class B extends A { int y; }"
        )
        assert symbols.lookup_field("B", "x").owner == "A"
        assert symbols.lookup_field("B", "y").owner == "B"
        assert symbols.lookup_field("B", "z") is None

    def test_override_shadows_in_methods_named(self):
        symbols = self._symbols(
            "class A { int f() { return 1; } }"
            "class B extends A { int f() { return 2; } }"
        )
        methods = symbols.methods_named("B", "f")
        assert len(methods) == 1
        assert methods[0].owner == "B"

    def test_overloads_all_visible(self):
        symbols = self._symbols(
            "class A { void f(int x) { } void f(string s) { } }"
        )
        assert len(symbols.methods_named("A", "f")) == 2

    def test_ambiguous_overload_returns_none(self):
        symbols = self._symbols(
            "class P {} class Q extends P {}"
            "class A { void f(P p, Q q) { } void f(Q q, P p) { } }"
        )
        q = class_type("Q")
        # Q,Q is applicable to both overloads and exact to neither.
        assert symbols.resolve_overload("A", "f", [q, q]) is None

    def test_ambiguous_call_rejected_by_checker(self):
        source = (
            "class P {} class Q extends P {}"
            "class A { void f(P p, Q q) { } void f(Q q, P p) { } "
            "void go(Q q) { f(q, q); } }"
        )
        with pytest.raises(TypeError_, match="no method"):
            typecheck(parse(source))

    def test_instance_field_layout_order(self):
        symbols = self._symbols(
            "class A { int a1; static int s; int a2; } "
            "class B extends A { int b1; }"
        )
        layout = symbols.instance_field_layout("B")
        assert [f.name for f in layout] == ["a1", "a2", "b1"]  # statics excluded


class TestPrelude:
    def test_prelude_parses_and_builds(self):
        program = parse_prelude()
        names = {c.name for c in program.classes}
        assert set(PRELUDE_CLASS_NAMES) == names

    def test_prelude_methods_are_native(self):
        program = parse_prelude()
        sys_class = program.find_class("Sys")
        assert all(m.is_native for m in sys_class.methods)


class TestMultiDimensionalArrays:
    def test_matrix_roundtrip(self):
        vm = run_main(
            """
            class Main {
                static void main() {
                    int[][] m = new int[3][];
                    for (int i = 0; i < 3; i = i + 1) {
                        m[i] = new int[3];
                        for (int j = 0; j < 3; j = j + 1) { m[i][j] = i * 3 + j; }
                    }
                    int total = 0;
                    for (int i = 0; i < 3; i = i + 1) {
                        for (int j = 0; j < 3; j = j + 1) { total = total + m[i][j]; }
                    }
                    Sys.print("" + total);
                }
            }
            """
        )
        assert vm.console == ["36"]

    def test_array_of_string_arrays(self):
        vm = run_main(
            """
            class Main {
                static void main() {
                    string[][] rows = new string[2][];
                    rows[0] = "a,b".split(",");
                    rows[1] = "c,d,e".split(",");
                    Sys.print(rows[1][2] + rows[0][0]);
                }
            }
            """
        )
        assert vm.console == ["ea"]


class TestAsciiChart:
    def test_chart_contains_markers_and_legend(self):
        chart = ascii_chart(
            {"up": [0, 5, 10], "flat": [3, 3, 3]},
            ["0", "1", "2"],
            height=6,
            title="demo",
        )
        assert "demo" in chart
        assert "* up" in chart and "o flat" in chart
        assert "*" in chart.splitlines()[2]  # peak of 'up' near the top

    def test_empty_series(self):
        assert ascii_chart({}, [], title="t") == "t"
