"""The lazy transformation mode: on-first-touch read barrier, idle-time
sweep, epoch close (forced forwarding-collapse collection), interaction
with GC and in-loop OSR rescue, and exact mid-epoch rollback.

The programs are built so the interesting path is forced:

* busy loops (no ``Sys.sleep``) never idle, so the sweep cannot run and
  every transform must come from the read barrier;
* sleepy loops idle constantly, so the sweep drains the epoch in the
  background while the app never touches the pending objects;
* a quiescent app (sleeping, touching nothing) keeps the heap image
  frozen so a held-window rollback can be compared bit for bit.
"""

from hypothesis import given, settings, strategies as st

from repro.dsu.engine import UpdateRequest
from repro.dsu.policy import UpdatePolicy
from repro.dsu.safepoint import RetryPolicy
from repro.vm.heap import HEADER_STATUS, HEADER_TIB
from tests.dsu_helpers import UpdateFixture

LAZY = UpdatePolicy(retry=RetryPolicy(timeout_ms=5_000.0), transform="lazy")
LAZY_HOLD = UpdatePolicy(retry=RetryPolicy(timeout_ms=5_000.0),
                         transform="lazy", hold_transaction=True)

# Busy: main never sleeps, so there is no idle slice and no sweep; the
# only way an Item ever gets transformed is the read/write barrier in
# Pool.get / Pool.put. main itself never names Item (it would bake the
# old layout and become restricted, blocking the safe point forever).
BUSY_V1 = """
class Item { int a; int b; }
class Pool {
    static Item it;
    static void init() { Pool.it = new Item(); Pool.it.a = 5; }
    static int get() { return Pool.it.a; }
    static void put(int v) { Pool.it.b = v; }
    static string tag() { return "v1"; }
}
class Main {
    static int rounds;
    static int sum;
    static void main() {
        Pool.init();
        while (rounds < 50000) {
            sum = sum + Pool.get();
            Pool.put(sum);
            rounds = rounds + 1;
        }
        Sys.print("sum:" + sum + ":" + Pool.tag());
    }
}
"""
BUSY_V2 = BUSY_V1.replace(
    "class Item { int a; int b; }",
    "class Item { int a; int b; int c; }",
).replace('return "v1";', 'return "v2";')

# Sleepy: main allocates a pool of Items behind a helper and then only
# sleeps — the idle sweep does all the transforming.
SLEEPY_V1 = """
class Item { int a; int b; }
class Pool {
    static Item[] items;
    static int count;
    static void fill(int n) {
        Pool.count = n;
        Pool.items = new Item[n];
        for (int i = 0; i < n; i = i + 1) {
            Pool.items[i] = new Item();
            Pool.items[i].a = i + 1;
        }
    }
    static int checksum() {
        int total = 0;
        for (int i = 0; i < Pool.count; i = i + 1) {
            total = total + Pool.items[i].a;
        }
        return total;
    }
    static string tag() { return "v1"; }
}
class Main {
    static int rounds;
    static void main() {
        Pool.fill(40);
        while (rounds < 120) { Sys.sleep(10); rounds = rounds + 1; }
        Sys.print("sum:" + Pool.checksum() + ":" + Pool.tag());
    }
}
"""
SLEEPY_V2 = SLEEPY_V1.replace(
    "class Item { int a; int b; }",
    "class Item { int a; int b; int c; }",
).replace('return "v1";', 'return "v2";')


def lazy_update(fixture, at_ms, v2_source, policy=LAZY, **kwargs):
    return fixture.update_at(at_ms, v2_source, policy=policy, **kwargs)


def find_instant(vm, name):
    for root in vm.tracer.roots:
        for span in root.walk():
            if span.name == name:
                return span
    return None


def disable_sweep(fixture):
    """Keep the barrier but never let the background sweep run, so tests
    control draining explicitly via drain_lazy_epoch(max_objects=...)."""
    fixture.engine._lazy_sweep_slice = lambda target_ms: None


class TestLazyBarrier:
    def run_busy(self, policy=LAZY):
        fixture = UpdateFixture(BUSY_V1, heap_cells=1 << 15).start()
        holder = lazy_update(fixture, 1.0, BUSY_V2)
        fixture.run(until_ms=60_000, max_instructions=100_000_000)
        result = holder["result"]
        assert result.succeeded, result.reason
        return fixture, result

    def test_touch_transform_supplies_correct_fields_both_ways(self):
        fixture, result = self.run_busy()
        # 50k iterations of a=5, reads and writes both healed through the
        # barrier, and the final tag proves the new code ran.
        assert fixture.console == ["sum:250000:v2"]
        assert result.transform_mode == "lazy"
        counters = fixture.vm.metrics.counters
        assert counters["dsu.lazy.touch_transforms"].value == 1
        assert counters["dsu.lazy.epochs_opened"].value == 1

    def test_lazy_pause_excludes_per_object_work_and_gc(self):
        fixture, result = self.run_busy()
        # No update collection and no per-object transformer ran inside
        # the pause (class transformers still do — they scale with the
        # number of changed classes, not the heap).
        assert result.phase_ms["gc"] == 0.0
        assert result.objects_transformed == 0
        # The pause still exists (suspension + classload), it just no
        # longer contains per-object work.
        assert result.total_pause_ms > 0.0
        assert fixture.vm.metrics.counters["dsu.gc_deferred"].value == 1

    def test_old_shell_keeps_its_field_image_and_forwarding(self):
        # Mid-epoch (sweep disabled), the old shell must keep its exact
        # pre-update cells — only its status header may change.
        fixture = UpdateFixture(BUSY_V1, heap_cells=1 << 15).start()
        disable_sweep(fixture)
        holder = lazy_update(fixture, 1.0, BUSY_V2)
        fixture.run(until_ms=60_000, max_instructions=100_000_000)
        assert holder["result"].succeeded
        vm = fixture.vm
        epoch = fixture.engine.lazy_epoch
        assert epoch is not None and not epoch.closed
        pool = vm.registry.get("Pool")
        old_address = vm.jtoc.read(pool.static_slots["it"])
        heap = vm.heap
        status = heap.cells[old_address + HEADER_STATUS]
        # Statics were never healed: they still point at the old shell,
        # which carries a same-space forwarding pointer...
        assert status != 0 and heap.in_space(status, heap.current_space)
        # ...whose class id is still the renamed old Item...
        old_class = vm.registry.by_class_id(heap.cells[old_address + HEADER_TIB])
        assert old_class.name.endswith("Item") and old_class.name != "Item"
        # ...and whose field image is untouched (a=5; b kept its last
        # pre-update value, later writes went to the transformed copy).
        assert heap.cells[old_address + 2] == 5
        new_address = status
        new_class = vm.registry.by_class_id(heap.cells[new_address + HEADER_TIB])
        assert new_class.name == "Item"
        # Drain to close; the closing collection collapses the forwarding.
        fixture.engine.drain_lazy_epoch()
        assert fixture.engine.lazy_epoch is None
        healed = vm.jtoc.read(vm.registry.get("Pool").static_slots["it"])
        assert vm.registry.by_class_id(
            vm.heap.cells[healed + HEADER_TIB]
        ).name == "Item"

    def test_epoch_close_collapses_forwarding_with_a_collection(self):
        fixture, result = self.run_busy()
        vm = fixture.vm
        assert fixture.engine.lazy_epoch is None
        assert vm.metrics.counters["dsu.lazy.epochs_closed"].value == 1
        # The close forced a collection: no reachable status word may
        # still carry same-space forwarding afterwards.
        heap = vm.heap
        address = heap.space_start
        while address < heap.bump:
            status = heap.cells[address + HEADER_STATUS]
            assert status == 0, f"stale forwarding at {address}"
            address += vm.objects.object_size_cells(address)

    def test_sweep_drains_without_touches(self):
        fixture = UpdateFixture(SLEEPY_V1, heap_cells=1 << 15).start()
        holder = lazy_update(fixture, 55, SLEEPY_V2)
        fixture.run(until_ms=5_000)
        result = holder["result"]
        assert result.succeeded, result.reason
        # All 40 Items were swept in idle slices, none on touch (the app
        # only sleeps during the epoch), and the checksum survives.
        assert fixture.console == ["sum:820:v2"]
        counters = fixture.vm.metrics.counters
        assert counters["dsu.lazy.sweep_transforms"].value == 40
        assert "dsu.lazy.touch_transforms" not in counters
        drained = find_instant(fixture.vm, "dsu.lazy.epoch-drained")
        assert drained is not None
        assert drained.args["sweep_transforms"] == 40
        assert drained.args["transformed"] == 40

    def test_pending_upper_bound_reported(self):
        fixture = UpdateFixture(SLEEPY_V1, heap_cells=1 << 15).start()
        holder = lazy_update(fixture, 55, SLEEPY_V2)
        fixture.run(until_ms=5_000)
        assert holder["result"].lazy_pending_upper >= 40


REFEQ_V1 = """
class Item { int a; Item self() { return this; } }
class Pool {
    static Item x;
    static Item y;
    static void init() { Pool.x = new Item(); Pool.x.a = 3; }
    static int probe() { return Pool.x.a; }
    static void alias() { Pool.y = Pool.x.self(); }
    static int same() { if (Pool.x == Pool.y) { return 1; } return 0; }
    static string tag() { return "v1"; }
}
class Main {
    static int rounds;
    static int sum;
    static void main() {
        Pool.init();
        while (rounds < 50000) {
            sum = sum + Pool.probe();
            rounds = rounds + 1;
        }
        Pool.alias();
        Sys.print("same:" + Pool.same() + ":" + Pool.tag());
    }
}
"""
REFEQ_V2 = REFEQ_V1.replace(
    "class Item { int a;", "class Item { int a; int pad;"
).replace('return "v1";', 'return "v2";')


class TestIdentityAndDispatch:
    def test_ref_eq_heals_across_the_transform(self):
        # After the update, Pool.x still holds the old-shell address
        # (statics are never healed mid-epoch) while Pool.y receives the
        # transformed copy's address out of the virtual call's healed
        # receiver. Identity comparison must chase the forwarding on both
        # operands and report them equal.
        fixture = UpdateFixture(REFEQ_V1, heap_cells=1 << 15).start()
        disable_sweep(fixture)
        holder = lazy_update(fixture, 1.0, REFEQ_V2)
        fixture.run(until_ms=60_000, max_instructions=100_000_000)
        assert holder["result"].succeeded
        assert fixture.console == ["same:1:v2"]
        epoch = fixture.engine.lazy_epoch
        assert epoch is not None and epoch.heals >= 1
        fixture.engine.drain_lazy_epoch()

    def test_invokevirtual_transforms_the_receiver(self):
        # Pool.alias()'s INVOKEVIRTUAL is the FIRST touch of the pending
        # Item (the spin between init and alias never dereferences it):
        # the receiver barrier must transform before dispatching through
        # the (invalidated) old TIB.
        source = REFEQ_V1.replace("sum + Pool.probe()", "sum + 1")
        v2 = REFEQ_V2.replace("sum + Pool.probe()", "sum + 1")
        fixture = UpdateFixture(source, heap_cells=1 << 15).start()
        disable_sweep(fixture)
        holder = lazy_update(fixture, 1.0, v2)
        fixture.run(until_ms=60_000, max_instructions=100_000_000)
        assert holder["result"].succeeded
        assert fixture.console == ["same:1:v2"]
        assert (
            fixture.vm.metrics.counters["dsu.lazy.touch_transforms"].value >= 1
        )
        fixture.engine.drain_lazy_epoch()


# A chain where the second object is referenced only from the first one's
# old shell mid-epoch: heap cells are never healed, so after Head is
# transformed, Tail is reachable only through addresses that predate the
# epoch. The barrier must still find and transform it on dereference.
CHAIN_V1 = """
class Tail { int x; }
class Head { Tail next; }
class Pool {
    static Head head;
    static void init() {
        Pool.head = new Head();
        Pool.head.next = new Tail();
        Pool.head.next.x = 9;
    }
    static int deep() { return Pool.head.next.x; }
    static string tag() { return "v1"; }
}
class Main {
    static int rounds;
    static int sum;
    static void main() {
        Pool.init();
        while (rounds < 30000) {
            sum = sum + Pool.deep();
            rounds = rounds + 1;
        }
        Sys.print("sum:" + sum + ":" + Pool.tag());
    }
}
"""
CHAIN_V2 = CHAIN_V1.replace(
    "class Tail { int x; }", "class Tail { int x; int pad; }"
).replace(
    "class Head { Tail next; }", "class Head { Tail next; int pad; }"
).replace('return "v1";', 'return "v2";')


class TestPendingChains:
    def test_object_referenced_only_through_a_pending_shell(self):
        fixture = UpdateFixture(CHAIN_V1, heap_cells=1 << 15).start()
        disable_sweep(fixture)
        holder = lazy_update(fixture, 1.0, CHAIN_V2)
        fixture.run(until_ms=60_000, max_instructions=100_000_000)
        assert holder["result"].succeeded
        assert fixture.console == ["sum:270000:v2"]
        # Both links of the chain were transformed by touch alone.
        assert (
            fixture.vm.metrics.counters["dsu.lazy.touch_transforms"].value == 2
        )
        fixture.engine.drain_lazy_epoch()

    def test_collection_mid_epoch_preserves_the_chain(self):
        fixture = UpdateFixture(CHAIN_V1, heap_cells=1 << 15).start()
        disable_sweep(fixture)
        holder = lazy_update(fixture, 1.0, CHAIN_V2)
        fixture.run(until_ms=2.0, max_instructions=100_000_000)
        assert holder["result"].succeeded
        vm = fixture.vm
        epoch = fixture.engine.lazy_epoch
        assert epoch is not None
        # Force an ordinary collection mid-epoch: forwarding collapses,
        # every root heals, the sweep cursor restarts in the new space.
        collections_before = vm.collector.collections
        vm.collect()
        assert vm.collector.collections == collections_before + 1
        fixture.run(until_ms=60_000, max_instructions=100_000_000)
        assert fixture.console == ["sum:270000:v2"]
        fixture.engine.drain_lazy_epoch()
        assert fixture.engine.lazy_epoch is None


# In-loop OSR rescue + lazy: the spinning frame is rescued onto the new
# loop body, which then touches a changed-class object through the
# barrier — both "never reaches a safe point" and "pause must not scale
# with the heap" at once.
SPIN_ITEM_V1 = """
class Item { int x; }
class Loop {
    static int n;
    static Item it;
    static void spin() {
        while (true) {
            Sys.sleep(5);
            n = n + 1;
            if (n >= 120) {
                Sys.print("done:" + n + ":" + Loop.probe() + ":" + Loop.tag());
                Sys.halt();
            }
        }
    }
    static int probe() { return Loop.it.x; }
    static string tag() { return "v1"; }
}
class Main {
    static void main() {
        Loop.it = new Item();
        Loop.it.x = 7;
        Loop.spin();
    }
}
"""
SPIN_ITEM_V2 = SPIN_ITEM_V1.replace(
    "n = n + 1;", "n = n + 2;\n            n = n - 1;"
).replace(
    "class Item { int x; }", "class Item { int x; int pad; }"
).replace('return "v1";', 'return "v2";')


class TestLazyWithInloopOsr:
    def test_barrier_fires_inside_a_rescued_frame(self):
        fixture = UpdateFixture(SPIN_ITEM_V1, heap_cells=1 << 15).start()
        fixture.run(until_ms=60)
        policy = UpdatePolicy(
            retry=RetryPolicy(timeout_ms=60.0),
            inloop_osr="auto",
            transform="lazy",
        )
        holder = lazy_update(fixture, 100.0, SPIN_ITEM_V2, policy=policy)
        fixture.run(until_ms=5_000)
        result = holder["result"]
        assert result.succeeded, result.reason
        assert result.osr_rescued
        assert result.transform_mode == "lazy"
        # The rescued run finishes with the new tag, the same count, and
        # the Item's value read through the epoch machinery.
        assert fixture.console == ["done:120:7:v2"]
        assert fixture.vm.metrics.counters["dsu.lazy.epochs_closed"].value == 1


class TestDifferentialVsEager:
    def run_mode(self, transform):
        fixture = UpdateFixture(SLEEPY_V1, heap_cells=1 << 15).start()
        policy = UpdatePolicy(
            retry=RetryPolicy(timeout_ms=5_000.0), transform=transform
        )
        holder = lazy_update(fixture, 55, SLEEPY_V2, policy=policy)
        fixture.run(until_ms=5_000)
        assert holder["result"].succeeded, holder["result"].reason
        return fixture

    def test_lazy_and_eager_end_in_the_same_observable_state(self):
        eager = self.run_mode("eager")
        lazy = self.run_mode("lazy")
        assert eager.console == lazy.console
        # Post-drain, post-collection heaps agree on the surviving Items.
        for fixture in (eager, lazy):
            fixture.engine.drain_lazy_epoch()
            fixture.vm.collect()

        def items(fixture):
            vm = fixture.vm
            pool = vm.registry.get("Pool")
            array = vm.jtoc.read(pool.static_slots["items"])
            return [
                [
                    vm.heap.cells[vm.objects.array_get(array, i) + offset]
                    for offset in (2, 3, 4)  # fields a, b, c
                ]
                for i in range(vm.objects.array_length(array))
            ]

        assert items(eager) == items(lazy)


def heap_image(vm):
    """Everything a rollback must restore bit for bit."""
    heap = vm.heap
    return (
        heap.current_space,
        heap.bump,
        list(heap.cells[heap.space_start:heap.bump]),
        len(vm.jtoc.cells),
        list(vm.jtoc.cells),
    )


class TestMidSweepRollback:
    def held_fixture(self, n=24):
        source = SLEEPY_V1.replace("Pool.fill(40)", f"Pool.fill({n})")
        v2 = SLEEPY_V2.replace("Pool.fill(40)", f"Pool.fill({n})")
        fixture = UpdateFixture(source, heap_cells=1 << 15).start()
        disable_sweep(fixture)
        fixture.run(until_ms=54)
        pre = heap_image(fixture.vm)
        holder = lazy_update(fixture, 55, v2, policy=LAZY_HOLD)
        fixture.run(until_ms=120)
        result = holder["result"]
        assert result.succeeded, result.reason
        assert result.lazy_epoch is not None
        assert fixture.vm.gc_disabled
        return fixture, result, pre, n

    def test_rollback_mid_sweep_restores_the_exact_heap_image(self):
        fixture, result, pre, n = self.held_fixture()
        # Drain roughly half the pool, then change our mind.
        transformed = fixture.engine.drain_lazy_epoch(max_objects=n)
        assert 0 < transformed < n
        fixture.engine.rollback_applied(result)
        assert heap_image(fixture.vm) == pre
        assert fixture.engine.lazy_epoch is None
        # The program finishes on the old version.
        fixture.run(until_ms=5_000)
        checksum = n * (n + 1) // 2
        assert fixture.console == [f"sum:{checksum}:v1"]

    def test_commit_mid_sweep_keeps_the_new_version(self):
        fixture, result, pre, n = self.held_fixture()
        fixture.engine.drain_lazy_epoch(max_objects=n)
        fixture.engine.commit_applied(result)
        assert not fixture.vm.gc_disabled
        fixture.run(until_ms=5_000)
        checksum = n * (n + 1) // 2
        assert fixture.console == [f"sum:{checksum}:v2"]

    def test_fully_drained_held_epoch_parks_until_commit(self):
        fixture, result, pre, n = self.held_fixture()
        # Drain everything: the sweep reaches the bump pointer but must
        # not close (the closing collection needs the pinned GC).
        fixture.engine.drain_lazy_epoch()
        epoch = fixture.engine.lazy_epoch
        assert epoch is not None and not epoch.closed
        assert epoch.transformed == n
        fixture.engine.commit_applied(result)
        # Sweep re-enabled after commit (our stub kept it off; call the
        # real drain) — now it may close and collect.
        fixture.engine.drain_lazy_epoch()
        assert fixture.engine.lazy_epoch is None
        fixture.run(until_ms=5_000)
        checksum = n * (n + 1) // 2
        assert fixture.console == [f"sum:{checksum}:v2"]

    @given(
        n=st.integers(min_value=1, max_value=16),
        budget=st.integers(min_value=0, max_value=60),
    )
    @settings(max_examples=8, deadline=None)
    def test_rollback_exactness_property(self, n, budget):
        fixture, result, pre, _ = self.held_fixture(n=n)
        fixture.engine.drain_lazy_epoch(max_objects=budget)
        fixture.engine.rollback_applied(result)
        assert heap_image(fixture.vm) == pre
        fixture.run(until_ms=5_000)
        checksum = n * (n + 1) // 2
        assert fixture.console == [f"sum:{checksum}:v1"]
