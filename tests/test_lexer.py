"""Unit tests for the jmini lexer."""

import pytest

from repro.lang.errors import LexError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenKind


def kinds(source):
    return [t.kind for t in tokenize(source)]


def values(source):
    return [t.value for t in tokenize(source)[:-1]]


class TestBasicTokens:
    def test_empty_input_yields_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_identifier(self):
        tokens = tokenize("fooBar _x x9")
        assert [t.value for t in tokens[:-1]] == ["fooBar", "_x", "x9"]
        assert all(t.kind is TokenKind.IDENT for t in tokens[:-1])

    def test_keywords_are_distinguished(self):
        tokens = tokenize("class classy")
        assert tokens[0].kind is TokenKind.KEYWORD
        assert tokens[1].kind is TokenKind.IDENT

    def test_int_literal(self):
        tokens = tokenize("0 42 1234567")
        assert [t.value for t in tokens[:-1]] == ["0", "42", "1234567"]
        assert all(t.kind is TokenKind.INT_LITERAL for t in tokens[:-1])

    def test_digit_prefixed_identifier_rejected(self):
        with pytest.raises(LexError):
            tokenize("9lives")

    def test_string_literal(self):
        tokens = tokenize('"hello world"')
        assert tokens[0].kind is TokenKind.STRING_LITERAL
        assert tokens[0].value == "hello world"

    def test_string_escapes(self):
        tokens = tokenize(r'"a\nb\tc\\d\"e"')
        assert tokens[0].value == 'a\nb\tc\\d"e'

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"abc')

    def test_newline_in_string(self):
        with pytest.raises(LexError):
            tokenize('"abc\ndef"')

    def test_unknown_escape(self):
        with pytest.raises(LexError):
            tokenize(r'"\q"')

    def test_unknown_character(self):
        with pytest.raises(LexError):
            tokenize("a # b")


class TestPunctuation:
    def test_multi_char_operators_are_greedy(self):
        assert values("== != <= >= && || =") == ["==", "!=", "<=", ">=", "&&", "||", "="]

    def test_single_char_operators(self):
        assert values("+-*/%!<>.,;") == list("+-*/%!<>.,;")

    def test_brackets(self):
        assert values("(){}[]") == ["(", ")", "{", "}", "[", "]"]


class TestComments:
    def test_line_comment(self):
        assert values("a // comment\nb") == ["a", "b"]

    def test_line_comment_at_eof(self):
        assert values("a // trailing") == ["a"]

    def test_block_comment(self):
        assert values("a /* ignore\nme */ b") == ["a", "b"]

    def test_nested_stars_in_block_comment(self):
        assert values("a /* ** * */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* never ends")


class TestLocations:
    def test_line_and_column_tracking(self):
        tokens = tokenize("ab\n  cd")
        assert tokens[0].location.line == 1
        assert tokens[0].location.column == 1
        assert tokens[1].location.line == 2
        assert tokens[1].location.column == 3

    def test_filename_recorded(self):
        tokens = tokenize("x", filename="Foo.jm")
        assert tokens[0].location.filename == "Foo.jm"
