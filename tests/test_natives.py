"""Coverage for the native method surface: string builtins, conversion
helpers, the simulated filesystem and deterministic randomness."""

import pytest

from tests.conftest import make_vm, run_main


def eval_exprs(*exprs, prelude=""):
    """Run a program printing each expression on its own line."""
    prints = "\n".join(f'Sys.print("" + ({e}));' for e in exprs)
    vm = run_main(
        "%s class Main { static void main() { %s } }" % (prelude, prints)
    )
    assert not vm.trap_log, vm.trap_log
    return vm.console


class TestStringNatives:
    def test_length_and_charat(self):
        assert eval_exprs('"hello".length()', '"hello".charAt(1)') == ["5", "e"]

    def test_substring_variants(self):
        assert eval_exprs(
            '"abcdef".substring(2, 4)', '"abcdef".substring(3)'
        ) == ["cd", "def"]

    def test_index_of_family(self):
        assert eval_exprs(
            '"banana".indexOf("na")',
            '"banana".lastIndexOf("na")',
            '"banana".indexOf("xyz")',
        ) == ["2", "4", "-1"]

    def test_predicates(self):
        assert eval_exprs(
            '"banana".startsWith("ban")',
            '"banana".endsWith("ana")',
            '"banana".contains("nan")',
            '"banana".contains("xyz")',
        ) == ["true", "true", "true", "false"]

    def test_case_and_trim(self):
        assert eval_exprs(
            '"  MiXeD  ".trim()',
            '"MiXeD".toLowerCase()',
            '"MiXeD".toUpperCase()',
        ) == ["MiXeD", "mixed", "MIXED"]

    def test_equals_family(self):
        assert eval_exprs(
            '"abc".equals("abc")',
            '"abc".equals("ABC")',
            '"abc".equalsIgnoreCase("ABC")',
        ) == ["true", "false", "true"]

    def test_replace_and_compare(self):
        assert eval_exprs(
            '"a-b-c".replace("-", "+")',
            '"apple".compareTo("banana")',
            '"same".compareTo("same")',
        ) == ["a+b+c", "-1", "0"]

    def test_split_edge_cases(self):
        vm = run_main(
            """
            class Main {
                static void main() {
                    string[] parts = "a,b,,c".split(",");
                    Sys.print("" + parts.length);
                    Sys.print("" + (parts[2] == ""));
                    string[] limited = "a,b,c,d".split(",", 2);
                    Sys.print(limited[1]);
                    string[] none = "plain".split(",");
                    Sys.print("" + none.length + ":" + none[0]);
                }
            }
            """
        )
        assert vm.console == ["4", "true", "b,c,d", "1:plain"]

    def test_hash_code_matches_java(self):
        # Java: "hello".hashCode() == 99162322
        assert eval_exprs('"hello".hashCode()') == ["99162322"]


class TestStrHelpers:
    def test_conversions(self):
        assert eval_exprs(
            'Str.fromInt(0 - 42)', 'Str.toInt("17")', 'Str.toInt(" -3 ")',
            'Str.fromBool(true)', 'Str.repeat("ab", 3)',
        ) == ["-42", "17", "-3", "true", "ababab"]

    def test_malformed_int_traps(self):
        vm = run_main(
            'class Main { static void main() { int x = Str.toInt("nope"); } }'
        )
        assert any("malformed" in line for line in vm.trap_log)


class TestFiles:
    def test_write_read_exists_remove(self):
        vm = run_main(
            """
            class Main {
                static void main() {
                    Sys.print("" + Files.exists("/tmp/x"));
                    Files.write("/tmp/x", "content");
                    Sys.print("" + Files.exists("/tmp/x"));
                    Sys.print(Files.read("/tmp/x"));
                    Files.remove("/tmp/x");
                    Sys.print("" + Files.exists("/tmp/x"));
                    Sys.print("" + (Files.read("/tmp/x") == null));
                }
            }
            """
        )
        assert vm.console == ["false", "true", "content", "false", "true"]

    def test_filesystem_shared_with_host(self):
        vm = make_vm(
            'class Main { static void main() { Sys.print(Files.read("/host")); } }'
        )
        vm.filesystem["/host"] = "from-python"
        vm.start_main("Main")
        vm.run(max_instructions=100_000)
        assert vm.console == ["from-python"]


class TestRandom:
    def test_rand_is_deterministic_per_seed(self):
        program = """
        class Main {
            static void main() {
                for (int i = 0; i < 5; i = i + 1) { Sys.print("" + Sys.rand(100)); }
            }
        }
        """
        first = run_main(program, seed=7).console
        second = run_main(program, seed=7).console
        third = run_main(program, seed=8).console
        assert first == second
        assert first != third
        assert all(0 <= int(v) < 100 for v in first)

    def test_time_monotonic(self):
        vm = run_main(
            """
            class Main {
                static void main() {
                    int a = Sys.time();
                    Sys.sleep(7);
                    int b = Sys.time();
                    Sys.print("" + (b >= a + 7));
                }
            }
            """
        )
        assert vm.console == ["true"]
