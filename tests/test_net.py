"""Unit tests for the simulated network, the event queue, the clock, and
the load generator's seeding and structured-failure contracts."""

import pytest

from repro.net.loadgen import (
    FAILURE_KINDS,
    FAILURE_PROTOCOL,
    FAILURE_REFUSED,
    FAILURE_TIMEOUT,
    ScriptedSession,
    SessionFailure,
    SessionLoad,
)
from repro.net.sockets import Network
from repro.vm.clock import Clock, CostModel, PhaseTimer
from repro.vm.events import EventQueue


class TestNetwork:
    def test_listen_and_connect(self):
        network = Network()
        lfd = network.listen(80)
        assert not network.has_pending(lfd)
        endpoint = network.client_connect(80)
        assert network.has_pending(lfd)
        fd = network.accept(lfd)
        assert fd == endpoint.fd

    def test_connect_refused_without_listener(self):
        network = Network()
        with pytest.raises(ConnectionRefusedError):
            network.client_connect(81)

    def test_duplicate_listener_rejected(self):
        network = Network()
        network.listen(80)
        with pytest.raises(ValueError):
            network.listen(80)

    def test_accept_queue_is_fifo(self):
        network = Network()
        lfd = network.listen(80)
        first = network.client_connect(80)
        second = network.client_connect(80)
        assert network.accept(lfd) == first.fd
        assert network.accept(lfd) == second.fd
        assert network.accept(lfd) is None

    def test_read_line_semantics(self):
        network = Network()
        lfd = network.listen(80)
        endpoint = network.client_connect(80)
        fd = network.accept(lfd)
        assert network.read_line(fd) is None  # would block
        endpoint.send("hello\r\nwor")
        assert network.has_line(fd)
        assert network.read_line(fd) == "hello"
        assert network.read_line(fd) is None  # partial line
        endpoint.send("ld\n")
        assert network.read_line(fd) == "world"

    def test_eof_after_client_close(self):
        network = Network()
        lfd = network.listen(80)
        endpoint = network.client_connect(80)
        fd = network.accept(lfd)
        endpoint.send("last")
        endpoint.close()
        assert network.read_line(fd) == "last"  # trailing unterminated data
        assert network.read_line(fd) is None
        assert network.is_eof(fd)

    def test_server_write_and_client_receive(self):
        network = Network()
        lfd = network.listen(80)
        endpoint = network.client_connect(80)
        fd = network.accept(lfd)
        network.write(fd, "response\n")
        assert endpoint.receive_line() == "response"
        assert endpoint.receive() == ""

    def test_write_after_close_is_dropped(self):
        network = Network()
        lfd = network.listen(80)
        endpoint = network.client_connect(80)
        fd = network.accept(lfd)
        network.close(fd)
        assert not network.is_open(fd)
        network.write(fd, "late")
        assert endpoint.receive() == ""

    def test_byte_accounting(self):
        network = Network()
        lfd = network.listen(80)
        endpoint = network.client_connect(80)
        fd = network.accept(lfd)
        endpoint.send("abc")
        network.write(fd, "defgh")
        connection = network.connection(fd)
        assert connection.bytes_to_server == 3
        assert connection.bytes_to_client == 5

    def test_read_exact_counts(self):
        network = Network()
        lfd = network.listen(80)
        endpoint = network.client_connect(80)
        fd = network.accept(lfd)
        endpoint.send("abcdef")
        assert network.has_data(fd, 4)
        assert network.read(fd, 4) == "abcd"
        assert not network.has_data(fd, 4)
        endpoint.close()
        assert network.has_data(fd, 4)  # close satisfies the wait
        assert network.read(fd, 4) == "ef"


class TestEventQueue:
    def test_events_fire_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.schedule(5.0, lambda: fired.append("b"))
        queue.schedule(1.0, lambda: fired.append("a"))
        queue.schedule(9.0, lambda: fired.append("c"))
        for callback in queue.pop_due(6.0):
            callback()
        assert fired == ["a", "b"]
        assert queue.next_time() == 9.0

    def test_same_time_events_fifo(self):
        queue = EventQueue()
        fired = []
        queue.schedule(1.0, lambda: fired.append(1))
        queue.schedule(1.0, lambda: fired.append(2))
        for callback in queue.pop_due(1.0):
            callback()
        assert fired == [1, 2]

    def test_len_tracks_pending(self):
        queue = EventQueue()
        queue.schedule(1.0, lambda: None)
        queue.schedule(2.0, lambda: None)
        assert len(queue) == 2
        queue.pop_due(1.5)
        assert len(queue) == 1


class TestClock:
    def test_ticks_accumulate(self):
        clock = Clock(CostModel(cycles_per_ms=1000))
        clock.instruction(5)
        clock.tick(995)
        assert clock.now_ms == 1.0

    def test_advance_never_goes_backwards(self):
        clock = Clock(CostModel(cycles_per_ms=1000))
        clock.advance_to_ms(5.0)
        clock.advance_to_ms(2.0)
        assert clock.now_ms == 5.0

    def test_advance_rounds_up_fractional_cycles(self):
        clock = Clock(CostModel(cycles_per_ms=3))
        clock.advance_to_ms(1.1)  # 3.3 cycles -> 4
        assert clock.cycles == 4
        assert clock.now_ms >= 1.1

    def test_idle_cycles_tracked(self):
        clock = Clock(CostModel(cycles_per_ms=1000))
        clock.instruction(100)
        clock.advance_to_ms(1.0)
        assert clock.busy_cycles == 100
        assert clock.idle_cycles == 900

    def test_phase_timer(self):
        clock = Clock(CostModel(cycles_per_ms=1000))
        timer = PhaseTimer(clock)
        timer.start("gc")
        clock.tick(2000)
        elapsed = timer.stop("gc")
        assert elapsed == 2.0
        assert timer.totals_ms["gc"] == 2.0


class _LoadgenVM:
    """Just enough VM surface for session scheduling tests: an event
    queue, a network, and a clock position."""

    class _Clock:
        now_ms = 0.0

    def __init__(self):
        self.events = EventQueue()
        self.network = Network()
        self.clock = self._Clock()

    def drain_events(self, until_ms):
        self.clock.now_ms = until_ms
        for callback in self.events.pop_due(until_ms):
            callback()


class TestSessionFailure:
    def test_failure_kinds_are_closed_and_distinct(self):
        assert FAILURE_KINDS == (
            FAILURE_TIMEOUT, FAILURE_REFUSED, FAILURE_PROTOCOL,
        )
        assert len(set(FAILURE_KINDS)) == 3

    def test_stringifies_to_the_detail_for_old_callers(self):
        failure = SessionFailure(FAILURE_TIMEOUT, "timeout at step 2", 2)
        assert str(failure) == "timeout at step 2"
        assert SessionFailure(FAILURE_REFUSED).kind == str(
            SessionFailure(FAILURE_REFUSED)
        )

    def test_refused_connection_reports_structured_kind(self):
        vm = _LoadgenVM()
        session = ScriptedSession(vm, 9999, [("send", "HELO")]).start(5.0)
        assert session.failure_kind == ""  # not failed yet
        vm.drain_events(10.0)
        assert session.done and not session.succeeded
        assert session.failed.kind == FAILURE_REFUSED
        assert session.failure_kind == FAILURE_REFUSED
        assert session.failed.step_index == 0


class TestSessionLoadSeeding:
    @staticmethod
    def spawn_times(seed, jitter_ms=9.0, count=12):
        load = SessionLoad(
            _LoadgenVM(), 9999, lambda i: [("send", "x")],
            start_ms=10.0, interval_ms=50.0, count=count,
            seed=seed, jitter_ms=jitter_ms,
        )
        return load.spawn_times

    def test_same_seed_is_bit_for_bit_reproducible(self):
        assert self.spawn_times(42) == self.spawn_times(42)

    def test_different_seeds_diverge(self):
        assert self.spawn_times(42) != self.spawn_times(43)

    def test_jitter_stays_within_the_window(self):
        for index, at_ms in enumerate(self.spawn_times(42)):
            base = 10.0 + index * 50.0
            assert base <= at_ms < base + 9.0

    def test_no_seed_keeps_the_historical_fixed_schedule(self):
        times = self.spawn_times(None, jitter_ms=9.0, count=5)
        assert times == [10.0, 60.0, 110.0, 160.0, 210.0]

    def test_failure_kinds_aggregates_structured_categories(self):
        vm = _LoadgenVM()
        load = SessionLoad(
            vm, 9999, lambda i: [("send", "x")],
            start_ms=0.0, interval_ms=10.0, count=3,
        )
        vm.drain_events(100.0)
        assert load.completed == 0
        assert load.failure_kinds() == [FAILURE_REFUSED] * 3
        assert all(
            reason.startswith("load-") for reason in load.failure_reasons()
        )
