"""Observability subsystem: tracer, metrics, exporters, and the
`repro.api` facade contract.

Covers the span-tree invariants on hand-built traces, the Chrome
``trace_event`` exporter against a golden file, PhaseTimer's tolerance of
mismatched start/stop pairs, metrics-registry consistency after real
updates, well-formedness of every bundled update's trace (aborts and
rollbacks included), and the `UpdateRequest`/`submit()` facade contract
(the legacy ``request_update`` shim is gone).
"""

import json
import warnings
from pathlib import Path

import pytest

from repro.dsu.engine import UpdateEngine, UpdateRequest
from repro.dsu.faults import FaultInjector, FaultPlan
from repro.dsu.policy import UpdatePolicy
from repro.dsu.safepoint import RetryPolicy
from repro.obs import Metrics, Tracer
from repro.obs.export import chrome_trace, render_span_tree
from repro.vm.clock import Clock, PhaseTimer
from tests.dsu_helpers import UpdateFixture
from tests.test_gc_extras import UPDATE_V1, UPDATE_V2

DATA_DIR = Path(__file__).parent / "data"


class FakeClock:
    """Deterministic stand-in for the VM clock in tracer unit tests."""

    def __init__(self):
        self.now_ms = 0.0

    def advance(self, ms):
        self.now_ms += ms


def make_tracer():
    clock = FakeClock()
    return Tracer(clock), clock


# ---------------------------------------------------------------------------
# Tracer


class TestTracer:
    def test_nested_spans_record_durations_and_args(self):
        tracer, clock = make_tracer()
        outer = tracer.begin("outer", "test", tag="a")
        clock.advance(5)
        inner = tracer.begin("inner", "test")
        clock.advance(2)
        tracer.end(inner, items=3)
        clock.advance(1)
        tracer.end(outer)
        assert tracer.validate() == []
        assert len(tracer.roots) == 1
        assert outer.duration_ms == 8
        assert inner.duration_ms == 2
        assert outer.children == [inner]
        assert inner.args == {"items": 3}
        assert outer.args == {"tag": "a"}

    def test_context_manager_and_instant(self):
        tracer, clock = make_tracer()
        with tracer.span("work", "test") as span:
            clock.advance(4)
            tracer.instant("tick", "test", n=1)
        assert span.closed
        assert [c.name for c in span.children] == ["tick"]
        assert span.children[0].instant
        assert tracer.validate() == []

    def test_end_unwinds_dangling_children(self):
        tracer, clock = make_tracer()
        outer = tracer.begin("outer")
        inner = tracer.begin("inner")
        clock.advance(3)
        # Ending the outer span must implicitly close the inner one and
        # record the anomaly rather than corrupting the stack.
        tracer.end(outer)
        assert inner.closed and outer.closed
        assert tracer.open_spans == []
        assert any("implicitly closed" in a for a in tracer.anomalies)
        assert tracer.validate() != []

    def test_end_without_begin_is_tolerated(self):
        tracer, _ = make_tracer()
        tracer.end()
        assert tracer.anomalies
        span = tracer.begin("late")
        tracer.end(span)
        # A second end() of the same span is also an anomaly, not a crash.
        tracer.end(span)
        assert len(tracer.anomalies) == 2

    def test_validate_flags_unclosed_and_escaping_spans(self):
        tracer, clock = make_tracer()
        tracer.begin("never-closed")
        problems = tracer.validate()
        assert any("never-closed" in p for p in problems)

    def test_disabled_tracer_records_nothing(self):
        clock = FakeClock()
        tracer = Tracer(clock, enabled=False)
        with tracer.span("work"):
            tracer.instant("tick")
        assert tracer.roots == []
        assert tracer.validate() == []

    def test_walk_and_find(self):
        tracer, clock = make_tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                clock.advance(1)
            with tracer.span("c"):
                clock.advance(1)
        root = tracer.roots[0]
        assert [s.name for s in root.walk()] == ["a", "b", "c"]
        assert [s.name for s in root.find("c")] == ["c"]
        assert root.find("missing") == []


# ---------------------------------------------------------------------------
# Metrics


class TestMetrics:
    def test_counters_and_histograms(self):
        metrics = Metrics()
        metrics.inc("updates")
        metrics.inc("updates", 2)
        metrics.observe("pause_ms", 4.0)
        metrics.observe("pause_ms", 6.0)
        snapshot = metrics.snapshot()
        assert snapshot["counters"] == {"updates": 3}
        summary = snapshot["histograms"]["pause_ms"]
        assert summary["count"] == 2
        assert summary["total"] == 10.0
        assert summary["min"] == 4.0
        assert summary["max"] == 6.0
        assert summary["last"] == 6.0
        assert summary["mean"] == 5.0

    def test_snapshot_is_deterministic_and_detached(self):
        metrics = Metrics()
        metrics.inc("b")
        metrics.inc("a")
        first = metrics.snapshot()
        assert list(first["counters"]) == ["a", "b"]
        metrics.inc("a")
        assert first["counters"]["a"] == 1  # snapshot unaffected

    def test_labelled_series_flatten_to_stable_keys(self):
        metrics = Metrics()
        metrics.inc("fleet.sessions", member="m2")
        metrics.inc("fleet.sessions", member="m2")
        metrics.inc("fleet.sessions", member="m0")
        key = metrics.labelled("fleet.sessions", member="m2")
        assert key == "fleet.sessions{member=m2}"
        assert metrics.counters[key].value == 2
        # Label order never matters: keys render labels sorted by name.
        assert metrics.labelled("x", b="2", a="1") == metrics.labelled(
            "x", a="1", b="2"
        )
        # The unlabelled series is a distinct sibling.
        metrics.inc("fleet.sessions")
        assert metrics.counters["fleet.sessions"].value == 1

    def test_labelled_histograms_are_independent(self):
        metrics = Metrics()
        metrics.observe("latency_ms", 5.0, member="m0")
        metrics.observe("latency_ms", 50.0, member="m1")
        m0 = metrics.histogram("latency_ms", member="m0")
        m1 = metrics.histogram("latency_ms", member="m1")
        assert m0 is not m1
        assert m0.max == 5.0 and m1.min == 50.0

    def test_histogram_percentiles(self):
        metrics = Metrics()
        for value in range(1, 101):
            metrics.observe("d", float(value))
        histogram = metrics.histograms["d"]
        assert histogram.percentile(0.0) == 1.0
        assert histogram.percentile(0.5) == 51.0
        assert histogram.percentile(0.99) == 100.0
        assert histogram.percentile(1.0) == 100.0  # clamped to the max

    def test_percentile_of_single_sample_is_that_sample(self):
        metrics = Metrics()
        metrics.observe("single", 42.0)
        histogram = metrics.histograms["single"]
        for fraction in (0.0, 0.5, 0.99, 1.0):
            assert histogram.percentile(fraction) == 42.0

    def test_percentile_of_empty_series_raises_clearly(self):
        with pytest.raises(ValueError, match="empty"):
            Metrics().histogram("empty").percentile(0.99)


# ---------------------------------------------------------------------------
# PhaseTimer tolerance (mismatched / nested start-stop pairs)


class TestPhaseTimer:
    @staticmethod
    def make_timer():
        clock = Clock()
        return PhaseTimer(clock), clock

    def test_unmatched_stop_reports_anomaly_not_crash(self):
        timer, _ = self.make_timer()
        assert timer.stop("gc") == 0.0
        assert timer.anomalies == ["stop('gc') without a matching start"]
        assert timer.totals_ms == {}

    def test_nested_same_phase_counts_wall_time_once(self):
        timer, clock = self.make_timer()
        per_ms = clock.costs.cycles_per_ms
        timer.start("gc")
        clock.tick(5 * per_ms)
        timer.start("gc")  # re-entrant window
        clock.tick(3 * per_ms)
        inner_ms = timer.stop("gc")
        clock.tick(2 * per_ms)
        timer.stop("gc")
        assert inner_ms == pytest.approx(3.0)
        assert timer.totals_ms["gc"] == pytest.approx(10.0)
        assert timer.anomalies == []
        assert timer.open_phases() == []

    def test_open_phases_reported(self):
        timer, _ = self.make_timer()
        timer.start("transform")
        assert timer.open_phases() == ["transform"]


# ---------------------------------------------------------------------------
# Chrome trace exporter (golden file)


def build_reference_tracer():
    """The fixed span tree behind ``tests/data/golden_trace.json``."""
    tracer, clock = make_tracer()
    metrics = Metrics()
    update = tracer.begin("dsu.update", "dsu", old_version="1.0",
                          new_version="2.0")
    clock.advance(1.5)
    with tracer.span("dsu.safepoint.round", "dsu", round=0):
        with tracer.span("dsu.safepoint.scan", "dsu", attempt=1) as scan:
            clock.advance(0.25)
            scan.args["safe"] = True
    with tracer.span("dsu.classload", "dsu", classes=2):
        clock.advance(0.5)
    with tracer.span("dsu.gc", "dsu"):
        with tracer.span("gc.collect", "gc", update=True):
            clock.advance(2.0)
            tracer.instant("gc.update-log", "gc", entries=3)
    tracer.end(update, status="applied")
    metrics.inc("dsu.updates_applied")
    metrics.observe("dsu.pause_ms", 4.25)
    return tracer, metrics


class TestChromeTraceExport:
    def test_matches_golden_file(self):
        tracer, metrics = build_reference_tracer()
        produced = chrome_trace(tracer, metrics=metrics,
                                process_name="golden-vm")
        golden = json.loads((DATA_DIR / "golden_trace.json").read_text())
        assert produced == golden

    def test_round_trips_through_json(self):
        tracer, metrics = build_reference_tracer()
        produced = chrome_trace(tracer, metrics=metrics)
        assert json.loads(json.dumps(produced)) == produced

    def test_event_geometry(self):
        tracer, _ = build_reference_tracer()
        trace = chrome_trace(tracer)
        events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        update = next(e for e in events if e["name"] == "dsu.update")
        # Simulated ms become trace microseconds.
        assert update["ts"] == 0.0
        assert update["dur"] == pytest.approx(4250.0)
        for event in events:
            assert event["ts"] >= update["ts"]
            assert event["ts"] + event["dur"] <= update["ts"] + update["dur"]

    def test_render_span_tree(self):
        tracer, _ = build_reference_tracer()
        text = render_span_tree(tracer)
        lines = text.splitlines()
        assert lines[0].lstrip().startswith("dsu.update")
        assert any("gc.collect" in line for line in lines)
        # Children indent deeper than their parent.
        depth = {line.lstrip(): len(line) - len(line.lstrip())
                 for line in lines}
        assert depth[lines[0].lstrip()] < min(
            d for text_, d in depth.items() if "gc.collect" in text_
        )


# ---------------------------------------------------------------------------
# Traced updates end-to-end


def run_traced_update(plan=None, timeout_ms=1_000.0, retries=0):
    fixture = UpdateFixture(UPDATE_V1).start()
    if plan is not None:
        fixture.engine.fault_injector = FaultInjector(plan)
    prepared = fixture.prepare(UPDATE_V2)
    request = UpdateRequest(
        prepared,
        policy=UpdatePolicy(
            retry=RetryPolicy(timeout_ms=timeout_ms, retries=retries)
        ),
    )
    holder = {}
    fixture.vm.events.schedule(
        55, lambda: holder.update(result=fixture.engine.submit(request))
    )
    fixture.run(until_ms=6_000)
    return fixture, holder["result"]


class TestTracedUpdates:
    def test_applied_update_span_tree(self):
        fixture, result = run_traced_update()
        assert result.succeeded
        tracer = fixture.vm.tracer
        assert tracer.validate() == []
        update = next(
            s for root in tracer.roots for s in root.walk()
            if s.name == "dsu.update"
        )
        names = {s.name for s in update.walk()}
        assert {"dsu.safepoint.round", "dsu.safepoint.scan", "dsu.classload",
                "dsu.transform", "dsu.cleanup", "gc.collect"} <= names
        assert update.args["status"] == "applied"
        # The span agrees with the result's own accounting.
        assert update.args["pause_ms"] == pytest.approx(
            result.total_pause_ms, abs=1e-6
        )

    def test_rollback_produces_closed_span_tree(self):
        fixture, result = run_traced_update(
            plan=FaultPlan(gc_oom_after_copies=5)
        )
        assert result.status == "aborted"
        assert result.rolled_back
        tracer = fixture.vm.tracer
        assert tracer.validate() == []
        update = next(
            s for root in tracer.roots for s in root.walk()
            if s.name == "dsu.update"
        )
        names = [s.name for s in update.walk()]
        assert "dsu.rollback" in names
        assert update.args["status"] == "aborted"
        assert update.args["rolled_back"] is True
        assert fixture.vm.metrics.counters["dsu.rollbacks"].value == 1

    def test_metrics_snapshot_consistency(self):
        fixture, result = run_traced_update()
        snapshot = fixture.vm.metrics.snapshot()
        counters = snapshot["counters"]
        assert counters["dsu.updates_requested"] == 1
        assert counters["dsu.updates_applied"] == 1
        assert "dsu.updates_aborted" not in counters
        assert counters["gc.collections"] >= 1
        assert counters["dsu.transformer_invocations"] >= 1
        histograms = snapshot["histograms"]
        assert histograms["dsu.pause_ms"]["count"] == 1
        assert histograms["dsu.pause_ms"]["last"] == pytest.approx(
            result.total_pause_ms
        )
        assert histograms["dsu.restricted_set_size"]["count"] == 1
        # GC pause accounted inside the update's gc phase.
        assert histograms["gc.pause_ms"]["total"] <= result.phase_ms["gc"] + 1e-6

    def test_timed_out_update_closes_round_spans(self):
        fixture, result = run_traced_update(
            plan=FaultPlan(block_safepoint_forever=True),
            timeout_ms=150.0, retries=1,
        )
        assert result.status == "aborted"
        tracer = fixture.vm.tracer
        assert tracer.validate() == []
        rounds = [
            s for root in tracer.roots for s in root.walk()
            if s.name == "dsu.safepoint.round"
        ]
        assert len(rounds) == 2
        # Both acquisition windows ran out; the abort follows the last one.
        assert [r.args["outcome"] for r in rounds] == ["expired", "expired"]
        assert rounds[1].args["round"] == 1


@pytest.mark.slow
class TestBundledUpdateTraces:
    def test_all_bundled_updates_have_well_formed_traces(self):
        from repro.harness.pauses import run_pause_sweep

        rows = run_pause_sweep()
        # 22 bundled updates, each measured eagerly and lazily.
        assert len(rows) == 44
        assert sum(1 for row in rows if row.transform_mode == "lazy") == 22
        problems = {
            f"{row.app} {row.from_version}->{row.to_version} "
            f"[{row.transform_mode}]": row.soundness_problems()
            for row in rows if row.soundness_problems()
        }
        assert problems == {}
        # With the in-loop OSR rescue on by default, the paper's two aborts
        # land too: every bundled update applies, in both transform modes.
        by_status = [row.status for row in rows]
        assert by_status.count("applied") == 44
        assert by_status.count("aborted") == 0
        # The lazy tentpole, across the whole bundle: layout-changing
        # updates must report zero update-collection pause and zero
        # in-pause object transforms.
        for row in rows:
            if row.transform_mode == "lazy" and not row.transform_map_empty:
                assert row.phases.get("gc", 0.0) == 0.0
                assert row.objects_transformed == 0


# ---------------------------------------------------------------------------
# Facade contract


class TestFacade:
    def test_request_update_shim_is_gone(self):
        fixture = UpdateFixture(UPDATE_V1).start()
        fixture.run(until_ms=60)
        prepared = fixture.prepare(UPDATE_V2)
        assert not hasattr(fixture.engine, "request_update")
        result = fixture.engine.submit(
            UpdateRequest(prepared, policy=UpdatePolicy(retry=RetryPolicy(500.0)))
        )
        fixture.run(until_ms=6_000)
        assert result.succeeded

    def test_facade_paths_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            fixture, result = run_traced_update()
        assert result.succeeded

    def test_app_driver_uses_facade(self):
        from repro.harness.pauses import measure_pause

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            row = measure_pause("crossftp", "1.07", "1.08")
        assert row.status == "applied"

    def test_update_request_validates_lint_mode(self):
        fixture = UpdateFixture(UPDATE_V1)
        prepared = fixture.prepare(UPDATE_V2)
        with pytest.raises(ValueError, match="lint"):
            UpdateRequest(prepared, policy=UpdatePolicy(lint="eventually"))

    def test_api_module_exports(self):
        import repro.api as api

        for name in api.__all__:
            assert hasattr(api, name), name

    def test_custom_tracer_override(self):
        fixture = UpdateFixture(UPDATE_V1).start()
        prepared = fixture.prepare(UPDATE_V2)
        tracer = Tracer(fixture.vm.clock)
        request = UpdateRequest(prepared, tracer=tracer)
        holder = {}
        fixture.vm.events.schedule(
            55, lambda: holder.update(result=fixture.engine.submit(request))
        )
        fixture.run(until_ms=6_000)
        assert holder["result"].succeeded
        assert fixture.vm.tracer is tracer
        assert any(
            s.name == "dsu.update" for root in tracer.roots for s in root.walk()
        )
