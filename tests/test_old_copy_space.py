"""Tests for the segregated old-copy space (§3.4's suggested optimization:
"If we put them in a special space, we could reclaim them immediately")."""

import pytest

from repro.dsu.engine import UpdateEngine
from tests.dsu_helpers import UpdateFixture
from tests.test_gc_extras import UPDATE_V1, UPDATE_V2


def run_update(eager: bool, heap_cells=1 << 15):
    fixture = UpdateFixture(UPDATE_V1, heap_cells=heap_cells)
    fixture.engine = UpdateEngine(fixture.vm, eager_old_copy_reclaim=eager)
    fixture.start()
    holder = fixture.update_at(55, UPDATE_V2)
    fixture.run(until_ms=400)
    return fixture, holder["result"]


class TestEagerOldCopyReclaim:
    def test_update_applies_and_state_survives(self):
        fixture, result = run_update(eager=True)
        assert result.succeeded, result.reason
        assert result.objects_transformed == 50
        vm = fixture.vm
        pool = vm.registry.get("Pool")
        array = vm.jtoc.read(pool.static_slots["items"])
        assert vm.objects.array_length(array) == 50
        item = vm.objects.array_get(array, 0)
        assert len(vm.objects.class_of(item).field_layout) == 3  # a, b, c

    def test_old_copies_reclaimed_without_extra_collection(self):
        lazy_fixture, lazy_result = run_update(eager=False)
        eager_fixture, eager_result = run_update(eager=True)
        assert lazy_result.succeeded and eager_result.succeeded
        # Identical workloads: the eager configuration has strictly more
        # free space right after the update (old copies already gone).
        assert eager_fixture.vm.heap.free_cells > lazy_fixture.vm.heap.free_cells
        # The difference is at least the 50 old copies (4 cells each).
        assert (
            eager_fixture.vm.heap.free_cells - lazy_fixture.vm.heap.free_cells
            >= 50 * 4
        )

    def test_post_reclaim_allocation_and_collection_are_healthy(self):
        fixture, result = run_update(eager=True)
        assert result.succeeded
        vm = fixture.vm
        # Allocate into the reclaimed region, then collect: graph intact.
        box_like = vm.registry.get("Item")
        kept = [vm.allocate_object(box_like) for _ in range(20)]
        root = [kept[0]]
        vm.extra_roots.append(root)
        vm.objects.write_field(root[0], "c", 123)
        vm.collect()
        assert vm.objects.read_field(root[0], "c") == 123
        vm.extra_roots.remove(root)

    def test_transformers_read_old_copies_in_special_space(self):
        # A custom transformer that actually reads the segregated old copy.
        fixture = UpdateFixture(UPDATE_V1, heap_cells=1 << 15)
        fixture.engine = UpdateEngine(fixture.vm, eager_old_copy_reclaim=True)
        fixture.start()
        overrides = {
            "Item": """
    static void jvolveClass(Item unused) { }
    static void jvolveObject(Item to, v10_Item from) {
        to.a = from.a;
        to.b = from.b;
        to.c = from.a + from.b + 1;
    }
"""
        }
        holder = fixture.update_at(55, UPDATE_V2, overrides=overrides)
        fixture.run(until_ms=400)
        assert holder["result"].succeeded, holder["result"].reason
        vm = fixture.vm
        pool = vm.registry.get("Pool")
        array = vm.jtoc.read(pool.static_slots["items"])
        for index in range(50):
            item = vm.objects.array_get(array, index)
            assert vm.objects.read_field(item, "c") == 1  # 0 + 0 + 1


class TestHeapPressure:
    def test_update_gc_overflow_aborts_cleanly(self):
        # A heap sized so the program runs but the update's double copy
        # cannot fit: the sizing pre-flight refuses the collection before
        # any object is copied, the update aborts with an actionable
        # diagnostic, and the VM keeps running the old version.
        fixture = UpdateFixture(UPDATE_V1, heap_cells=900)
        fixture.start()
        collections_before = fixture.vm.collector.collections
        holder = fixture.update_at(55, UPDATE_V2)
        fixture.run(until_ms=2_000)
        result = holder["result"]
        assert result.status == "aborted"
        assert result.failed_phase == "gc"
        assert result.reason_code == "heap-preflight"
        assert result.rolled_back
        assert fixture.vm.halted is False
        # Pre-flight means *before* any copying: no collection ever ran.
        assert fixture.vm.collector.collections == collections_before
        # The old-version heap graph survived the un-flip intact.
        vm = fixture.vm
        pool = vm.registry.get("Pool")
        array = vm.jtoc.read(pool.static_slots["items"])
        assert vm.objects.array_length(array) == 50
        item = vm.objects.array_get(array, 0)
        assert len(vm.objects.class_of(item).field_layout) == 2  # a, b only

    def test_same_update_succeeds_with_headroom(self):
        fixture = UpdateFixture(UPDATE_V1, heap_cells=1 << 14)
        fixture.start()
        holder = fixture.update_at(55, UPDATE_V2)
        fixture.run(until_ms=2_000)
        assert holder["result"].succeeded
