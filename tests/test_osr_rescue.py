"""Runtime tests for the in-loop OSR rescue: the extended mapped OSR
primitive's refusal paths (``repro.vm.osr``), the engine's end-of-budget
rescue, differential execution (a rescued loop finishes with exactly the
output of a fresh new-version run), and rollback under an injected OSR
fault (the original spinning frame is restored by the transaction)."""

import types

import pytest

from repro.dsu.engine import UpdateRequest
from repro.dsu.faults import FaultInjector, FaultPlan
from repro.dsu.policy import UpdatePolicy
from repro.dsu.safepoint import RetryPolicy
from repro.vm.osr import OSRError, can_osr, osr_replace, osr_replace_mapped

from .dsu_helpers import UpdateFixture


SPIN_V1 = """
class Loop {
    static int n;
    static void spin() {
        while (true) {
            Sys.sleep(5);
            n = n + 1;
            if (n >= 120) { Sys.print("done:" + n + ":" + Loop.tag()); Sys.halt(); }
        }
    }
    static string tag() { return "v1"; }
}
class Main { static void main() { Loop.spin(); } }
"""

# Per-iteration semantics preserved (n still advances by one), but the
# bytecode changes (category 1) and the version tag flips: a rescued run
# must finish with the *new* tag and the same final count.
SPIN_V2 = SPIN_V1.replace(
    "n = n + 1;", "n = n + 2;\n            n = n - 1;"
).replace('return "v1";', 'return "v2";')


def spin_fixture():
    fixture = UpdateFixture(SPIN_V1).start()
    fixture.run(until_ms=60)  # enter the loop
    return fixture


def spin_frame(fixture):
    for thread in fixture.vm.threads:
        for frame in thread.frames:
            if frame.code.entry.qualified_name == "Loop.spin()V":
                return frame
    raise AssertionError("no spinning frame found")


def submit_rescued_update(fixture, at_ms=100.0, timeout_ms=60.0,
                          inloop_osr="auto", plan=None):
    prepared = fixture.prepare(SPIN_V2)
    if plan is not None:
        fixture.engine.fault_injector = FaultInjector(plan)
    holder = {}
    request = UpdateRequest(
        prepared,
        policy=UpdatePolicy(
            retry=RetryPolicy(timeout_ms=timeout_ms), inloop_osr=inloop_osr
        ),
    )
    fixture.vm.events.schedule(
        at_ms, lambda: holder.update(result=fixture.engine.submit(request))
    )
    return holder


class TestMappedOsrRefusals:
    """osr_replace_mapped must refuse rather than corrupt a frame."""

    def test_opt_tier_frame_refused(self):
        fixture = spin_fixture()
        frame = spin_frame(fixture)
        entry = frame.code.entry
        frame.code = fixture.vm.jit.compile_opt(entry)
        with pytest.raises(OSRError, match="opt-compiled"):
            osr_replace_mapped(fixture.vm, frame, {frame.pc: frame.pc}, {})

    def test_stale_version_refused(self):
        # No update installed: the entry is still at the frame's own
        # bytecode version, so there is no successor body to map onto.
        fixture = spin_fixture()
        frame = spin_frame(fixture)
        assert frame.code.entry.bytecode_version == frame.entered_at_version
        with pytest.raises(OSRError, match="immediately-replaced"):
            osr_replace_mapped(fixture.vm, frame, {frame.pc: frame.pc}, {})

    def test_missing_pc_mapping_refused(self):
        fixture = spin_fixture()
        frame = spin_frame(fixture)
        frame.entered_at_version -= 1  # simulate a one-version-old frame
        with pytest.raises(OSRError, match="no pc mapping"):
            osr_replace_mapped(fixture.vm, frame, {}, {})

    def test_unreachable_mapped_pc_refused(self):
        fixture = spin_fixture()
        frame = spin_frame(fixture)
        frame.entered_at_version -= 1
        with pytest.raises(OSRError, match="unreachable"):
            osr_replace_mapped(fixture.vm, frame, {frame.pc: 999}, {})

    def test_compensation_slot_out_of_range_refused(self):
        fixture = spin_fixture()
        frame = spin_frame(fixture)
        frame.entered_at_version -= 1
        with pytest.raises(OSRError, match="out of range"):
            osr_replace_mapped(
                fixture.vm, frame, {frame.pc: frame.pc}, {}, {99: 1}
            )

    def test_identity_osr_length_mismatch_refused(self):
        # Stock (category-2) OSR relies on the identity mapping; a
        # baseline recompilation that changes the instruction stream's
        # length voids it and must be refused.
        fixture = spin_fixture()
        frame = spin_frame(fixture)
        assert can_osr(frame)
        real = fixture.vm.jit.compile_base(frame.code.entry)
        fixture.vm.jit.compile_base = lambda entry: types.SimpleNamespace(
            instructions=real.instructions[:-1]
        )
        with pytest.raises(OSRError, match="changed length"):
            osr_replace(fixture.vm, frame)


class TestEngineRescue:
    def test_retry_budget_exhausts_then_rescues_in_place(self):
        fixture = spin_fixture()
        holder = submit_rescued_update(fixture)
        fixture.run(until_ms=3_000)
        result = holder["result"]
        assert result.succeeded, result.reason
        assert result.osr_rescued
        assert result.extended_osr_frames == 1
        assert result.osr_plans_verified >= 1
        assert result.osr_plans_refused == []
        assert result.retry_rounds >= 0
        assert fixture.vm.metrics.counters["dsu.inloop_osr_rescues"].value == 1

    def test_paper_fidelity_mode_still_aborts(self):
        fixture = spin_fixture()
        holder = submit_rescued_update(fixture, inloop_osr="off")
        fixture.run(until_ms=3_000)
        result = holder["result"]
        assert result.status == "aborted"
        assert "timeout" in result.reason
        assert not result.osr_rescued

    def test_differential_execution_matches_fresh_new_version_run(self):
        # A fresh run of the NEW program from the same initial state.
        fresh = UpdateFixture(SPIN_V2).start()
        fresh.run(until_ms=5_000)
        assert fresh.console == ["done:120:v2"]

        # The rescued run: boot OLD, remap the live loop frame mid-flight.
        fixture = spin_fixture()
        holder = submit_rescued_update(fixture)
        fixture.run(until_ms=5_000)
        assert holder["result"].osr_rescued
        assert fixture.console == fresh.console

    def test_injected_osr_fault_rolls_the_frame_back(self):
        fixture = spin_fixture()
        frame = spin_frame(fixture)
        old_code = frame.code
        old_version = frame.entered_at_version
        holder = submit_rescued_update(fixture, plan=FaultPlan(osr_fail=True))
        fixture.run(until_ms=5_000)
        result = holder["result"]
        assert result.status == "aborted"
        assert result.rolled_back
        assert not result.osr_rescued
        # The transaction restored the original spinning frame: same code
        # object, same bytecode version, and the loop runs to completion
        # on the OLD program exactly as if the update never happened.
        frame = spin_frame(fixture)
        assert frame.code is old_code
        assert frame.entered_at_version == old_version
        assert fixture.console == ["done:120:v1"]
