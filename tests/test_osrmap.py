"""Unit tests for the osrmap pass (``repro.analysis.osrmap``): the static
planner that proves — or refuses to prove — an in-loop frame remap for
every changed method whose frames can block forever.

Covers the verified plans for the paper's two rescued aborts (jetty
5.1.3, javaemail 1.3) and a set of adversarial mutants that each break
one soundness condition and must be *refused* with the right DSU-OM
code, never mis-planned.
"""

import pytest

from repro.analysis import analyze_update
from repro.analysis.osrmap import (
    OSRPlan,
    OSRRefusal,
    compute_osr_plans,
    loop_heads,
    parkable_pcs,
)
from repro.analysis.report import (
    CODE_OSR_BACKEDGE,
    CODE_OSR_COMPENSATION,
    CODE_OSR_LOCALS,
    CODE_OSR_STACK,
    CODE_OSR_UNSUPPORTED,
)
from repro.apps.registry import APPS
from repro.compiler.compile import compile_source
from repro.dsu.upt import prepare_update
from repro.harness.updates import AppDriver


SPIN_KEY = ("Loop", "spin", "()V")

SPIN_V1 = """
class Loop {
    static int n;
    static void spin() {
        while (true) { Sys.sleep(5); n = n + 1; }
    }
}
class Main { static void main() { Loop.spin(); } }
"""


def plans_for(v1_source, v2_source):
    old = compile_source(v1_source, version="1.0")
    new = compile_source(v2_source, version="2.0")
    prepared = prepare_update(old, new, "1.0", "2.0")
    return compute_osr_plans(old, prepared)


def app_plans(app, from_version, to_version):
    info = APPS[app]
    driver = AppDriver(
        app, info.versions, info.main_class,
        transformer_overrides=info.transformer_overrides,
    )
    prepared = driver.prepare_pair(from_version, to_version)
    return compute_osr_plans(driver.classfiles(from_version), prepared)


class TestPlannedSpinner:
    def test_changed_loop_body_gets_a_verified_plan(self):
        v2 = SPIN_V1.replace("n = n + 1;", "n = n + 2;")
        report = plans_for(SPIN_V1, v2)
        assert report.targets == [SPIN_KEY]
        assert report.fully_planned
        plan = report.plans[SPIN_KEY]
        assert isinstance(plan, OSRPlan)
        # The loop head maps onto the new loop head and every parkable pc
        # of the old body has a destination.
        assert plan.back_edges
        for old_head, new_head in plan.back_edges:
            assert plan.pc_map[old_head] == new_head
        assert set(plan.parkable) <= set(plan.pc_map)

    def test_plan_is_pure_data(self):
        v2 = SPIN_V1.replace("n = n + 1;", "n = n + 2;")
        report = plans_for(SPIN_V1, v2)
        payload = report.to_dict()
        assert payload["fully_planned"]
        assert payload["plans"][0]["method"] == list(SPIN_KEY)
        mappings = report.mappings()
        assert SPIN_KEY in mappings
        assert mappings[SPIN_KEY].pc_map == report.plans[SPIN_KEY].pc_map

    def test_unchanged_spinner_is_not_a_target(self):
        # Nothing changed about the loop method itself (only a helper):
        # its frames are not restricted, so nothing needs a remap.
        v1 = SPIN_V1.replace(
            "class Main", "class Util { static int pad() { return 1; } }\n"
            "class Main"
        )
        v2 = v1.replace("return 1;", "return 2;")
        report = plans_for(v1, v2)
        assert SPIN_KEY not in report.targets
        assert not report.fully_planned  # vacuously: no targets, no rescue

    def test_compensation_seeds_new_constant_local(self):
        # The new body introduces a local with a provable constant
        # initializer that is live inside the loop: the plan must carry a
        # compensation assignment for it.
        v2 = SPIN_V1.replace(
            "static void spin() {\n        while (true) { Sys.sleep(5); n = n + 1; }",
            "static void spin() {\n        int step = 3;\n"
            "        while (true) { Sys.sleep(5); n = n + step; }",
        )
        report = plans_for(SPIN_V1, v2)
        assert report.fully_planned, report.refusals
        plan = report.plans[SPIN_KEY]
        assert 3 in plan.compensation.values()


class TestAdversarialMutants:
    """Each mutant breaks one condition a sound remap depends on; the
    planner must refuse, not guess."""

    def refusal(self, v2):
        report = plans_for(SPIN_V1, v2)
        assert SPIN_KEY in report.targets
        assert not report.fully_planned
        refusal = report.refusals[SPIN_KEY]
        assert isinstance(refusal, OSRRefusal)
        return refusal

    def test_restructured_loop_refused_om01(self):
        # The new body replaces the spin loop with a bounded one of a
        # different shape plus trailing code: the old back-edge target has
        # no matching loop head.
        v2 = SPIN_V1.replace(
            "while (true) { Sys.sleep(5); n = n + 1; }",
            "n = 1000; Sys.halt();",
        )
        refusal = self.refusal(v2)
        assert refusal.code == CODE_OSR_BACKEDGE
        assert "loop" in refusal.reason

    def test_removed_blocking_call_site_refused_om02(self):
        # One of the two old sleep call sites disappears: a frame parked
        # beneath that callee has nowhere to land in the new body.
        v1 = SPIN_V1.replace(
            "while (true) { Sys.sleep(5); n = n + 1; }",
            "while (true) { Sys.sleep(5); Sys.sleep(7); n = n + 1; }",
        )
        v2 = v1.replace(
            "while (true) { Sys.sleep(5); Sys.sleep(7); n = n + 1; }",
            "while (true) { Sys.sleep(5); n = n + 1; }",
        )
        old = compile_source(v1, version="1.0")
        prepared = prepare_update(
            old, compile_source(v2, version="2.0"), "1.0", "2.0"
        )
        report = compute_osr_plans(old, prepared)
        assert SPIN_KEY in report.targets
        refusal = report.refusals[SPIN_KEY]
        assert refusal.code == CODE_OSR_STACK
        assert "parkable" in refusal.reason

    def test_dropped_live_local_refused_om03(self):
        # Both bodies share an alignable prologue and loop skeleton, but
        # the old body's loop-live local has no counterpart in the new
        # one: a frame's `a` value would have nowhere to go.
        v1 = SPIN_V1.replace(
            "static void spin() {\n        while (true) { Sys.sleep(5); n = n + 1; }",
            "static void spin() {\n        n = 0;\n        int a = 7;\n"
            "        while (true) { Sys.sleep(5); n = n + a; }",
        )
        v2 = v1.replace(
            "static void spin() {\n        n = 0;\n        int a = 7;\n"
            "        while (true) { Sys.sleep(5); n = n + a; }",
            "static void spin() {\n        n = 0;\n"
            "        while (true) { Sys.sleep(5); n = n + 8; }",
        )
        old = compile_source(v1, version="1.0")
        prepared = prepare_update(
            old, compile_source(v2, version="2.0"), "1.0", "2.0"
        )
        report = compute_osr_plans(old, prepared)
        assert SPIN_KEY in report.targets
        refusal = report.refusals[SPIN_KEY]
        assert refusal.code == CODE_OSR_LOCALS

    def test_unprovable_initializer_refused_om04(self):
        # The new body's extra loop-live local is seeded from a call, not
        # a constant: no compensation assignment can be proven.
        v2 = SPIN_V1.replace(
            "static void spin() {\n        while (true) { Sys.sleep(5); n = n + 1; }",
            "static void spin() {\n        int step = Loop.pick();\n"
            "        while (true) { Sys.sleep(5); n = n + step; }",
        ).replace(
            "class Main", "class Unused { }\nclass Main"
        ).replace(
            "static void spin()",
            "static int pick() { return 2; }\n    static void spin()",
        )
        refusal = self.refusal(v2)
        assert refusal.code == CODE_OSR_COMPENSATION
        assert "initializer" in refusal.reason

    def test_signature_change_refused_om05(self):
        v2 = SPIN_V1.replace(
            "static void spin() {", "static void spin(int k) {"
        ).replace("Loop.spin();", "Loop.spin(0);")
        refusal = self.refusal(v2)
        assert refusal.code == CODE_OSR_UNSUPPORTED
        assert "does not exist" in refusal.reason


class TestCfgHelpers:
    def test_loop_heads_and_parkable_pcs(self):
        classfiles = compile_source(SPIN_V1, version="1.0")
        method = classfiles["Loop"].get_method("spin", "()V")
        heads = loop_heads(method.instructions)
        assert len(heads) == 1
        reachable = set(range(len(method.instructions)))
        parkable = parkable_pcs(method.instructions, reachable)
        assert 0 in parkable
        assert heads[0] in parkable
        invoke_pcs = [
            pc for pc, instr in enumerate(method.instructions)
            if instr.op.startswith("INVOKE")
        ]
        assert set(invoke_pcs) <= set(parkable)


class TestRealUpdates:
    """The two historical aborts must be fully planned; the idle-only
    crossftp updates must not be rescued."""

    def test_jetty_513_fully_planned(self):
        report = app_plans("jetty", "5.1.2", "5.1.3")
        names = {f"{k[0]}.{k[1]}" for k in report.targets}
        assert names == {"PoolThread.run", "ThreadedServer.acceptSocket"}
        assert report.fully_planned
        assert not report.refusals
        for plan in report.plans.values():
            assert set(plan.parkable) <= set(plan.pc_map)

    def test_javaemail_13_fully_planned(self):
        report = app_plans("javaemail", "1.2.4", "1.3")
        names = {f"{k[0]}.{k[1]}" for k in report.targets}
        assert {"SMTPProcessor.run", "Pop3Processor.run"} <= names
        assert report.fully_planned
        assert not report.refusals

    def test_crossftp_stays_idle_only(self):
        # crossftp's accept loop blocks in Net.accept indefinitely, but
        # none of its updates change that loop: no targets, no rescue.
        report = app_plans("crossftp", "1.07", "1.08")
        assert report.targets == []
        assert not report.fully_planned

    def test_analyze_update_threads_the_report(self):
        info = APPS["jetty"]
        driver = AppDriver(
            "jetty", info.versions, info.main_class,
            transformer_overrides=info.transformer_overrides,
        )
        prepared = driver.prepare_pair("5.1.2", "5.1.3")
        report = analyze_update(driver.classfiles("5.1.2"), prepared)
        assert report.osr_plans is not None
        assert report.osr_plans.fully_planned
        assert report.predicted_abort == ""
        rendered = report.render()
        assert "will OSR (plan verified" in rendered
        assert "osr-plan:" in rendered
