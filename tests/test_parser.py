"""Unit tests for the jmini parser."""

import pytest

from repro.lang import ast_nodes as ast
from repro.lang.errors import ParseError
from repro.lang.parser import parse
from repro.lang.types import INT, STRING, array_type


def parse_single_class(body):
    program = parse("class C { %s }" % body)
    assert len(program.classes) == 1
    return program.classes[0]


def parse_method_body(statements):
    decl = parse_single_class("void m() { %s }" % statements)
    return decl.methods[0].body.statements


class TestClassStructure:
    def test_empty_class(self):
        decl = parse_single_class("")
        assert decl.name == "C"
        assert decl.superclass == "Object"

    def test_extends(self):
        program = parse("class A {} class B extends A {}")
        assert program.classes[1].superclass == "A"

    def test_fields(self):
        decl = parse_single_class("int x; static string name; private final bool ok;")
        assert [f.name for f in decl.fields] == ["x", "name", "ok"]
        assert decl.fields[1].is_static
        assert decl.fields[2].is_final
        assert decl.fields[2].access == "private"

    def test_multi_declarator_field(self):
        decl = parse_single_class("int a, b, c;")
        assert [f.name for f in decl.fields] == ["a", "b", "c"]

    def test_field_initializer(self):
        decl = parse_single_class("int x = 42;")
        assert isinstance(decl.fields[0].initializer, ast.IntLiteral)

    def test_array_types(self):
        decl = parse_single_class("int[] xs; string[][] grid;")
        assert decl.fields[0].declared_type is array_type(INT)
        assert decl.fields[1].declared_type is array_type(array_type(STRING))

    def test_method(self):
        decl = parse_single_class("int add(int a, int b) { return a + b; }")
        method = decl.methods[0]
        assert method.name == "add"
        assert [p.name for p in method.params] == ["a", "b"]
        assert method.return_type is INT

    def test_native_method(self):
        decl = parse_single_class("static native void log(string s);")
        method = decl.methods[0]
        assert method.is_native
        assert method.body is None

    def test_constructor(self):
        decl = parse_single_class("C(int x) { }")
        assert len(decl.constructors) == 1
        assert decl.constructors[0].super_args is None

    def test_constructor_with_super(self):
        program = parse("class A { A(int x) {} } class B extends A { B() { super(1); } }")
        ctor = program.classes[1].constructors[0]
        assert ctor.super_args is not None
        assert len(ctor.super_args) == 1


class TestStatements:
    def test_var_decl(self):
        (stmt,) = parse_method_body("int x = 1;")
        assert isinstance(stmt, ast.VarDecl)
        assert stmt.name == "x"

    def test_class_typed_var_decl(self):
        (stmt,) = parse_method_body("Foo f = null;")
        assert isinstance(stmt, ast.VarDecl)

    def test_assignment(self):
        (stmt,) = parse_method_body("x = 1;")
        assert isinstance(stmt, ast.Assign)
        assert isinstance(stmt.target, ast.NameRef)

    def test_field_assignment(self):
        (stmt,) = parse_method_body("this.x = 1;")
        assert isinstance(stmt.target, ast.FieldAccess)

    def test_array_assignment(self):
        (stmt,) = parse_method_body("xs[0] = 1;")
        assert isinstance(stmt.target, ast.ArrayIndex)

    def test_invalid_assignment_target(self):
        with pytest.raises(ParseError):
            parse_method_body("1 + 2 = 3;")

    def test_if_else(self):
        (stmt,) = parse_method_body("if (a) { } else { }")
        assert isinstance(stmt, ast.If)
        assert stmt.else_branch is not None

    def test_dangling_else_binds_to_nearest_if(self):
        (stmt,) = parse_method_body("if (a) if (b) x = 1; else x = 2;")
        assert stmt.else_branch is None
        assert stmt.then_branch.else_branch is not None

    def test_while(self):
        (stmt,) = parse_method_body("while (a) { b = 1; }")
        assert isinstance(stmt, ast.While)

    def test_for(self):
        (stmt,) = parse_method_body("for (int i = 0; i < 10; i = i + 1) { }")
        assert isinstance(stmt, ast.For)
        assert isinstance(stmt.init, ast.VarDecl)
        assert stmt.condition is not None
        assert isinstance(stmt.update, ast.Assign)

    def test_for_with_empty_clauses(self):
        (stmt,) = parse_method_body("for (;;) { break; }")
        assert stmt.init is None and stmt.condition is None and stmt.update is None

    def test_return_break_continue(self):
        stmts = parse_method_body("while (true) { break; continue; } return;")
        loop_body = stmts[0].body.statements
        assert isinstance(loop_body[0], ast.Break)
        assert isinstance(loop_body[1], ast.Continue)
        assert isinstance(stmts[1], ast.Return)


class TestExpressions:
    def expr(self, text):
        (stmt,) = parse_method_body(f"x = {text};")
        return stmt.value

    def test_precedence_mul_over_add(self):
        expr = self.expr("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_precedence_and_over_or(self):
        expr = self.expr("a || b && c")
        assert expr.op == "||"
        assert expr.right.op == "&&"

    def test_comparison(self):
        expr = self.expr("a + 1 <= b * 2")
        assert expr.op == "<="

    def test_unary(self):
        expr = self.expr("!a")
        assert isinstance(expr, ast.Unary)
        expr = self.expr("-x")
        assert isinstance(expr, ast.Unary)

    def test_parenthesized(self):
        expr = self.expr("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_new_object(self):
        expr = self.expr("new User(\"a\", 3)")
        assert isinstance(expr, ast.NewObject)
        assert len(expr.args) == 2

    def test_new_array(self):
        expr = self.expr("new int[10]")
        assert isinstance(expr, ast.NewArray)
        assert expr.element_type is INT

    def test_chained_postfix(self):
        expr = self.expr("a.b.c(1)[2]")
        assert isinstance(expr, ast.ArrayIndex)
        assert isinstance(expr.array, ast.MethodCall)

    def test_unqualified_call(self):
        expr = self.expr("helper(1)")
        assert isinstance(expr, ast.MethodCall)
        assert expr.receiver is None

    def test_cast(self):
        expr = self.expr("(User)o")
        assert isinstance(expr, ast.Cast)

    def test_cast_vs_parens(self):
        expr = self.expr("(a) + b")
        assert isinstance(expr, ast.Binary)

    def test_instanceof(self):
        expr = self.expr("o instanceof User")
        assert isinstance(expr, ast.InstanceOf)

    def test_super_call(self):
        expr = self.expr("super.size()")
        assert isinstance(expr, ast.SuperCall)

    def test_string_method_chain(self):
        expr = self.expr('"a@b".split("@")[0]')
        assert isinstance(expr, ast.ArrayIndex)


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("class C { void m() { int x = 1 } }")

    def test_missing_close_brace(self):
        with pytest.raises(ParseError):
            parse("class C { void m() { }")

    def test_stray_token_at_top_level(self):
        with pytest.raises(ParseError):
            parse("42")
