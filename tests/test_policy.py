"""The UpdatePolicy API: presets, validation, engine wiring, and the
one-release DeprecationWarning shims covering the pre-PR-9 kwarg sprawl
(``lint=``/``bypass=``/``inloop_osr=``/``hold_transaction=`` on
UpdateRequest, ``heap_grow=`` on the engine, bare ``policy=RetryPolicy``).
"""

import dataclasses

import pytest

from repro.dsu.engine import UpdateEngine, UpdateRequest
from repro.dsu.policy import Policy, UpdatePolicy
from repro.dsu.safepoint import RetryPolicy
from tests.dsu_helpers import UpdateFixture
from tests.test_gc_extras import UPDATE_V1, UPDATE_V2


class TestPolicyObject:
    def test_defaults_are_paper_shaped(self):
        policy = UpdatePolicy()
        assert policy.retry == RetryPolicy()
        assert policy.lint == "off"
        assert policy.bypass == "off"
        assert policy.inloop_osr == "off"
        assert policy.transform == "eager"
        assert policy.hold_transaction is False
        assert policy.heap_grow is False

    def test_paper_preset_is_the_default_policy(self):
        assert UpdatePolicy.paper() == UpdatePolicy()

    def test_fast_preset(self):
        policy = UpdatePolicy.fast()
        assert policy.bypass == "auto"
        assert policy.inloop_osr == "auto"
        assert policy.transform == "lazy"
        assert policy.lint == "off"

    def test_safe_preset(self):
        policy = UpdatePolicy.safe()
        assert policy.lint == "strict"
        assert policy.inloop_osr == "auto"
        assert policy.transform == "eager"
        assert policy.bypass == "off"

    def test_presets_take_overrides(self):
        policy = UpdatePolicy.fast(transform="eager", lint="warn")
        assert policy.transform == "eager"
        assert policy.lint == "warn"
        assert policy.bypass == "auto"  # the preset's value survives
        retry = RetryPolicy(timeout_ms=99.0, retries=3)
        assert UpdatePolicy.safe(retry=retry).retry is retry

    def test_policy_alias(self):
        assert Policy is UpdatePolicy
        assert Policy.fast() == UpdatePolicy.fast()

    def test_frozen(self):
        policy = UpdatePolicy()
        with pytest.raises(dataclasses.FrozenInstanceError):
            policy.lint = "warn"

    @pytest.mark.parametrize("kwargs,needle", [
        (dict(lint="eventually"), "lint"),
        (dict(bypass="yes"), "bypass"),
        (dict(inloop_osr="maybe"), "inloop_osr"),
        (dict(transform="deferred"), "transform"),
    ])
    def test_mode_validation(self, kwargs, needle):
        with pytest.raises(ValueError, match=needle):
            UpdatePolicy(**kwargs)
        # ...and through preset overrides too.
        with pytest.raises(ValueError, match=needle):
            UpdatePolicy.fast(**kwargs)


class TestDeprecatedShims:
    def prepared(self):
        fixture = UpdateFixture(UPDATE_V1)
        return fixture.prepare(UPDATE_V2)

    def test_bare_retry_policy_is_wrapped_with_a_warning(self):
        retry = RetryPolicy(timeout_ms=123.0)
        with pytest.warns(DeprecationWarning, match="policy=RetryPolicy"):
            request = UpdateRequest(self.prepared(), policy=retry)
        assert isinstance(request.policy, UpdatePolicy)
        assert request.policy.retry is retry

    @pytest.mark.parametrize("name,value", [
        ("lint", "warn"),
        ("bypass", "auto"),
        ("inloop_osr", "auto"),
        ("hold_transaction", True),
    ])
    def test_mode_kwargs_warn_and_fold_into_the_policy(self, name, value):
        with pytest.warns(DeprecationWarning, match=f"UpdateRequest\\({name}"):
            request = UpdateRequest(self.prepared(), **{name: value})
        assert getattr(request.policy, name) == value
        # The attribute mirrors the effective policy afterwards.
        assert getattr(request, name) == value

    def test_kwarg_overrides_an_explicit_policy(self):
        with pytest.warns(DeprecationWarning):
            request = UpdateRequest(
                self.prepared(),
                policy=UpdatePolicy(lint="warn", bypass="auto"),
                lint="strict",
            )
        assert request.policy.lint == "strict"
        assert request.policy.bypass == "auto"

    def test_plain_request_carries_the_default_policy_without_warning(self):
        # (DeprecationWarning is an error under the test filter, so just
        # constructing is the assertion.)
        request = UpdateRequest(self.prepared())
        assert request.policy == UpdatePolicy()
        assert request.lint == "off"
        assert request.hold_transaction is False

    def test_engine_heap_grow_kwarg_warns(self):
        fixture = UpdateFixture(UPDATE_V1)
        with pytest.warns(DeprecationWarning, match="UpdateEngine\\(heap_grow"):
            engine = UpdateEngine(fixture.vm, heap_grow=True)
        assert engine.heap_grow is True


class TestPolicyDrivesTheEngine:
    def test_policy_heap_grow_grows_an_undersized_heap(self):
        fixture = UpdateFixture(UPDATE_V1, heap_cells=900).start()
        holder = fixture.update_at(
            55, UPDATE_V2, policy=UpdatePolicy(heap_grow=True)
        )
        fixture.run(until_ms=2_000)
        assert holder["result"].succeeded, holder["result"].reason
        assert fixture.vm.heap.size > 900

    def test_without_heap_grow_the_same_update_aborts(self):
        fixture = UpdateFixture(UPDATE_V1, heap_cells=900).start()
        holder = fixture.update_at(55, UPDATE_V2)
        fixture.run(until_ms=2_000)
        result = holder["result"]
        assert not result.succeeded
        assert result.reason_code == "heap-preflight"

    def test_policy_hold_transaction_keeps_the_snapshot(self):
        fixture = UpdateFixture(UPDATE_V1).start()
        holder = fixture.update_at(
            55, UPDATE_V2, policy=UpdatePolicy(hold_transaction=True)
        )
        fixture.run(until_ms=1_000)
        result = holder["result"]
        assert result.succeeded, result.reason
        assert result.transaction is not None
        fixture.engine.commit_applied(result)
        assert result.transaction is None

    def test_policy_transform_mode_lands_in_the_result(self):
        fixture = UpdateFixture(UPDATE_V1).start()
        holder = fixture.update_at(55, UPDATE_V2)
        fixture.run(until_ms=2_000)
        assert holder["result"].transform_mode == "eager"
