"""Property-based tests (hypothesis) for core data structures and
invariants: the type lattice, descriptor encoding, the lexer, expression
evaluation, GC graph preservation, and UPT diffing."""

from hypothesis import given, settings, strategies as st

from repro.compiler.compile import compile_source
from repro.dsu.upt import diff_programs, version_prefix
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenKind
from repro.lang.types import (
    BOOL,
    INT,
    STRING,
    SubtypeOracle,
    array_type,
    class_type,
    method_descriptor,
    parse_descriptor,
    parse_method_descriptor,
)
from repro.vm.heap import NULL
from repro.vm.vm import VM

# ---------------------------------------------------------------------------
# type descriptors


def base_types():
    return st.sampled_from([INT, BOOL, STRING, class_type("Object"), class_type("Foo"),
                            class_type("BarBaz9")])


def jm_types():
    return st.recursive(base_types(), lambda t: t.map(array_type), max_leaves=4)


class TestTypeDescriptors:
    @given(jm_types())
    @settings(max_examples=60)
    def test_descriptor_roundtrip_is_identity(self, t):
        assert parse_descriptor(t.descriptor) is t

    @given(st.lists(jm_types(), max_size=5), jm_types())
    @settings(max_examples=40)
    def test_method_descriptor_roundtrip(self, params, ret):
        descriptor = method_descriptor(params, ret)
        parsed_params, parsed_ret = parse_method_descriptor(descriptor)
        assert parsed_params == params
        assert parsed_ret is ret


# ---------------------------------------------------------------------------
# subtype lattice over random forests


@st.composite
def class_forest(draw):
    """A random single-inheritance hierarchy as {name: parent}.

    Mirrors the system invariant the symbol table enforces: every class
    chains up to Object (roots get Object as their parent).
    """
    size = draw(st.integers(min_value=1, max_value=8))
    names = [f"K{i}" for i in range(size)]
    parents = {"Object": None, "K0": "Object"}
    for i in range(1, size):
        parent_index = draw(st.integers(min_value=-1, max_value=i - 1))
        parents[names[i]] = "Object" if parent_index < 0 else names[parent_index]
    return parents


class TestSubtypeOracle:
    @given(class_forest(), st.data())
    @settings(max_examples=60)
    def test_join_is_commutative_upper_bound(self, forest, data):
        oracle = SubtypeOracle(lambda name: forest.get(name))
        names = sorted(forest)
        a = class_type(data.draw(st.sampled_from(names)))
        b = class_type(data.draw(st.sampled_from(names)))
        try:
            joined_ab = oracle.join(a, b)
            joined_ba = oracle.join(b, a)
        except ValueError:
            # No common ancestor among roots without Object: acceptable for
            # detached forests, and symmetric.
            try:
                oracle.join(b, a)
                assert False, "join raised one way only"
            except ValueError:
                return
        assert joined_ab is joined_ba
        assert oracle.is_assignable(a, joined_ab)
        assert oracle.is_assignable(b, joined_ab)

    @given(class_forest(), st.data())
    @settings(max_examples=40)
    def test_subclass_reflexive_and_transitive_to_root(self, forest, data):
        oracle = SubtypeOracle(lambda name: forest.get(name))
        name = data.draw(st.sampled_from(sorted(forest)))
        assert oracle.is_subclass(name, name)
        current = name
        while forest.get(current) is not None:
            current = forest[current]
            assert oracle.is_subclass(name, current)


# ---------------------------------------------------------------------------
# lexer round trips


_ident = st.from_regex(r"[a-z][a-zA-Z0-9_]{0,6}", fullmatch=True).filter(
    lambda s: s not in {"class", "extends", "static", "final", "native", "private",
                        "public", "protected", "if", "else", "while", "for",
                        "return", "break", "continue", "new", "this", "super",
                        "null", "true", "false", "instanceof", "int", "bool",
                        "string", "void"}
)


class TestLexer:
    @given(st.lists(st.one_of(
        _ident,
        st.integers(min_value=0, max_value=10**9).map(str),
        st.sampled_from(["+", "-", "*", "/", "==", "!=", "<=", ">=", "{", "}",
                         "(", ")", ";", ",", "class", "while", "return"]),
    ), max_size=20))
    @settings(max_examples=60)
    def test_tokenize_of_spaced_tokens_preserves_values(self, pieces):
        source = " ".join(pieces)
        tokens = tokenize(source)
        assert tokens[-1].kind is TokenKind.EOF
        assert [t.value for t in tokens[:-1]] == pieces

    @given(st.text(alphabet=st.characters(blacklist_characters='"\\\n'),
                   max_size=30))
    @settings(max_examples=60)
    def test_string_literal_roundtrip(self, text):
        escaped = text.replace("\\", "\\\\").replace('"', '\\"')
        tokens = tokenize(f'"{escaped}"')
        assert tokens[0].value == text


# ---------------------------------------------------------------------------
# arithmetic: compiled jmini agrees with Python (Java division semantics)


@st.composite
def int_exprs(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        return str(draw(st.integers(min_value=-50, max_value=50)))
    op = draw(st.sampled_from(["+", "-", "*"]))
    left = draw(int_exprs(depth + 1))
    right = draw(int_exprs(depth + 1))
    return f"({left} {op} {right})"


class TestArithmeticAgainstPython:
    @given(int_exprs())
    @settings(max_examples=30, deadline=None)
    def test_expression_value_matches_python(self, expr_text):
        # jmini has no negative literals; render them as (0 - n).
        rendered = expr_text.replace("(-", "(0 - ").replace(" -", " - ")
        import re

        rendered = re.sub(r"(?<![\d)])-(\d+)", r"(0 - \1)", rendered)
        source = (
            "class Main { static int f() { return %s; } "
            "static void main() { Sys.print(\"\" + f()); } }" % rendered
        )
        vm = VM()
        vm.boot(compile_source(source))
        vm.start_main("Main")
        vm.run(max_instructions=100_000)
        assert vm.console == [str(eval(expr_text))]


# ---------------------------------------------------------------------------
# GC preserves arbitrary object graphs


@st.composite
def object_graphs(draw):
    size = draw(st.integers(min_value=1, max_value=12))
    nodes = []
    for index in range(size):
        value = draw(st.integers(min_value=-1000, max_value=1000))
        left = draw(st.one_of(st.none(), st.integers(0, size - 1)))
        right = draw(st.one_of(st.none(), st.integers(0, size - 1)))
        nodes.append((value, left, right))
    roots = draw(st.lists(st.integers(0, size - 1), min_size=1, max_size=size,
                          unique=True))
    return nodes, roots


GRAPH_PROGRAM = """
class Box { int v; Box a; Box b; }
class Anchor { static Box[] roots; }
class Main { static void main() { } }
"""


class TestGCGraphPreservation:
    @given(object_graphs(), st.integers(min_value=1, max_value=3))
    @settings(max_examples=25, deadline=None)
    def test_collection_preserves_graph_shape_and_values(self, graph, collections):
        nodes, roots = graph
        vm = VM(heap_cells=8192)
        vm.boot(compile_source(GRAPH_PROGRAM))
        box = vm.registry.get("Box")
        anchor = vm.registry.get("Anchor")
        array_class = vm.objects.array_class("LBox;")
        slot = anchor.static_slots["roots"]
        vm.jtoc.write(slot, vm.allocate_array(array_class, len(roots)))

        addresses = []
        for value, _, _ in nodes:
            address = vm.objects.alloc_object(box)
            vm.objects.write_field(address, "v", value)
            addresses.append(address)
        for address, (_, left, right) in zip(addresses, nodes):
            if left is not None:
                vm.objects.write_field(address, "a", addresses[left])
            if right is not None:
                vm.objects.write_field(address, "b", addresses[right])
        root_array = vm.jtoc.read(slot)
        for index, node_index in enumerate(roots):
            vm.objects.array_set(root_array, index, addresses[node_index])

        for _ in range(collections):
            vm.collect()

        # Traverse the collected graph and compare against the model,
        # checking shape (shared nodes stay shared) and payloads.
        root_array = vm.jtoc.read(slot)
        seen = {}

        def check(address, node_index):
            assert address != NULL
            if node_index in seen:
                assert seen[node_index] == address
                return
            seen[node_index] = address
            value, left, right = nodes[node_index]
            assert vm.objects.read_field(address, "v") == value
            a = vm.objects.read_field(address, "a")
            b = vm.objects.read_field(address, "b")
            if left is None:
                assert a == NULL
            else:
                check(a, left)
            if right is None:
                assert b == NULL
            else:
                check(b, right)

        for index, node_index in enumerate(roots):
            check(vm.objects.array_get(root_array, index), node_index)
        # Reverse check: each model node maps to exactly one address.
        assert len(set(seen.values())) == len(seen)


# ---------------------------------------------------------------------------
# UPT diffing


_FIELD_NAMES = ["alpha", "beta", "gamma", "delta"]


@st.composite
def simple_class_sources(draw):
    fields = draw(st.lists(st.sampled_from(_FIELD_NAMES), unique=True, max_size=4))
    body = "".join(f" int {name};" for name in fields)
    return f"class P {{{body} }} class Main {{ static void main() {{ }} }}", tuple(fields)


class TestUPTProperties:
    @given(simple_class_sources())
    @settings(max_examples=25, deadline=None)
    def test_self_diff_is_empty(self, source_fields):
        source, _ = source_fields
        classfiles = compile_source(source, version="a")
        spec = diff_programs(classfiles, classfiles, "a", "b")
        assert not spec.class_updates
        assert not spec.method_body_updates
        assert not spec.indirect_methods
        assert not spec.added_classes and not spec.deleted_classes
        assert spec.method_body_only()

    @given(simple_class_sources(), simple_class_sources())
    @settings(max_examples=25, deadline=None)
    def test_field_set_changes_are_class_updates(self, old, new):
        old_source, old_fields = old
        new_source, new_fields = new
        old_cf = compile_source(old_source, version="a")
        new_cf = compile_source(new_source, version="b")
        spec = diff_programs(old_cf, new_cf, "a", "b")
        if old_fields != new_fields:
            assert "P" in spec.class_updates
        else:
            assert "P" not in spec.class_updates

    @given(st.text(alphabet="0123456789.-_ab", min_size=1, max_size=12))
    @settings(max_examples=60)
    def test_version_prefix_is_identifier_shaped(self, version):
        prefix = version_prefix(version)
        assert prefix.startswith("v") and prefix.endswith("_")
        body = prefix[1:-1]
        assert all(c.isalnum() for c in body)


# ---------------------------------------------------------------------------
# tier equivalence: opt-compiled (inlined) code computes what base code does


@st.composite
def helper_bodies(draw):
    """A small pure helper f(x) plus a driver combining calls to it."""
    a = draw(st.integers(min_value=-9, max_value=9))
    b = draw(st.integers(min_value=-9, max_value=9))
    op = draw(st.sampled_from(["+", "-", "*"]))
    helper = f"return (x {op} {a}) + {b};".replace("+ -", "- ").replace("- -", "+ ")
    calls = draw(st.integers(min_value=1, max_value=3))
    combine = " + ".join(f"H.f(x + {i})" for i in range(calls))
    return helper, combine


class TestTierEquivalence:
    @given(helper_bodies(), st.integers(min_value=-20, max_value=20))
    @settings(max_examples=20, deadline=None)
    def test_opt_tier_matches_base_tier(self, bodies, argument):
        helper, combine = bodies
        source = (
            "class H { static int f(int x) { %s } }"
            "class D { static int drive(int x) { return %s; } }"
            "class Main { static void main() { } }" % (helper, combine)
        )
        vm = VM()
        vm.boot(compile_source(source))
        entry = vm.registry.get("D")  # ensure loaded
        drive = vm.methods.lookup("D", "drive", "(I)I")
        base_result = vm.run_static_method_synchronously(drive, [argument])
        vm.jit.compile_opt(drive)
        assert drive.opt_code is not None
        opt_result = vm.run_static_method_synchronously(drive, [argument])
        assert base_result == opt_result


# ---------------------------------------------------------------------------
# class files survive serialization for arbitrary compiled programs


class TestClassFileRoundtrip:
    @given(simple_class_sources())
    @settings(max_examples=20, deadline=None)
    def test_json_roundtrip_preserves_signatures(self, source_fields):
        from repro.bytecode.classfile import ClassFile

        source, _ = source_fields
        for name, classfile in compile_source(source, version="x").items():
            restored = ClassFile.from_json(classfile.to_json())
            assert restored.field_signature() == classfile.field_signature()
            assert restored.method_signatures() == classfile.method_signatures()

    @given(simple_class_sources())
    @settings(max_examples=15, deadline=None)
    def test_diff_of_roundtripped_program_is_empty(self, source_fields):
        from repro.bytecode.classfile import ClassFile

        source, _ = source_fields
        original = compile_source(source, version="x")
        restored = {
            name: ClassFile.from_json(cf.to_json()) for name, cf in original.items()
        }
        spec = diff_programs(original, restored, "x", "y")
        assert not spec.class_updates and not spec.method_body_updates
