"""RetryPolicy edge cases: zero-retry configs, backoff growth past the
base timeout budget, and retry exhaustion reporting the correct abort
reason through the engine.

Complements ``test_dsu_faults.TestSafepointFaults`` (which covers the
happy retry paths) with the policy's boundary behavior.
"""

import pytest

from repro.dsu.engine import UpdateRequest
from repro.dsu.faults import FaultPlan
from repro.dsu.policy import UpdatePolicy
from repro.dsu.safepoint import DEFAULT_TIMEOUT_MS, RetryPolicy
from repro.dsu.specification import PHASE_SAFEPOINT, REASON_TIMEOUT
from tests.dsu_helpers import UpdateFixture
from tests.test_dsu_faults import (
    assert_clean_abort,
    assert_old_version_workload_completes,
    inject,
)
from tests.test_gc_extras import UPDATE_V1, UPDATE_V2


class TestRetryPolicyShape:
    def test_defaults_match_the_papers_window(self):
        policy = RetryPolicy()
        assert policy.timeout_ms == DEFAULT_TIMEOUT_MS == 15_000.0
        assert policy.retries == 0
        assert policy.rounds == 1

    def test_zero_retry_budget_is_exactly_the_timeout(self):
        policy = RetryPolicy(timeout_ms=250.0, retries=0, backoff=8.0)
        assert policy.rounds == 1
        # backoff is irrelevant with a single round
        assert policy.round_timeout_ms(0) == 250.0
        assert policy.total_budget_ms() == 250.0

    def test_backoff_grows_each_round_past_the_base_timeout(self):
        policy = RetryPolicy(timeout_ms=100.0, retries=3, backoff=2.0)
        assert [policy.round_timeout_ms(k) for k in range(policy.rounds)] == [
            100.0, 200.0, 400.0, 800.0,
        ]
        assert policy.total_budget_ms() == 1_500.0

    def test_backoff_one_keeps_rounds_flat(self):
        policy = RetryPolicy(timeout_ms=100.0, retries=4, backoff=1.0)
        assert policy.total_budget_ms() == 500.0
        assert policy.round_timeout_ms(4) == 100.0

    def test_large_backoff_budget_stays_finite_and_exact(self):
        # A steep backoff overflows the *base* timeout budget quickly; the
        # total must still be the exact geometric sum, not an overflow.
        policy = RetryPolicy(timeout_ms=10.0, retries=9, backoff=10.0)
        assert policy.round_timeout_ms(9) == 10.0 * 10.0 ** 9
        assert policy.total_budget_ms() == sum(
            10.0 * 10.0 ** k for k in range(10)
        )

    def test_invalid_configs_are_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(timeout_ms=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_ms=-5.0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_ms=100.0, retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_ms=100.0, backoff=0.5)


class TestRetryExhaustionReporting:
    def submit_blocked(self, retries, backoff=2.0, timeout_ms=100.0):
        fixture = inject(
            UpdateFixture(UPDATE_V1),
            FaultPlan(block_safepoint_forever=True),
        ).start()
        prepared = fixture.prepare(UPDATE_V2)
        holder = {}
        fixture.vm.events.schedule(55, lambda: holder.update(
            result=fixture.engine.submit(UpdateRequest(
                prepared,
                policy=UpdatePolicy(retry=RetryPolicy(
                    timeout_ms=timeout_ms, retries=retries, backoff=backoff,
                )),
            ))
        ))
        fixture.run(until_ms=5_000)
        return fixture, holder["result"]

    def test_zero_retries_aborts_after_one_round(self):
        fixture, result = self.submit_blocked(retries=0)
        assert_clean_abort(fixture, result, PHASE_SAFEPOINT, REASON_TIMEOUT,
                           rolled_back=False)
        assert result.retry_rounds == 0
        assert result.rounds_allowed == 1
        # A single 100 ms round: the abort lands right after it expires,
        # well before a second round's worth of waiting.
        elapsed = result.finished_at_ms - result.requested_at_ms
        assert 100.0 <= elapsed < 300.0
        assert_old_version_workload_completes(fixture)

    def test_exhaustion_reports_timeout_not_generic_failure(self):
        fixture, result = self.submit_blocked(retries=2)
        assert_clean_abort(fixture, result, PHASE_SAFEPOINT, REASON_TIMEOUT,
                           rolled_back=False)
        assert result.retry_rounds == 2
        assert result.rounds_allowed == 3
        assert "timeout" in result.reason
        assert "<injected-safepoint-blocker>" in result.blockers_seen

    def test_steep_backoff_spends_the_whole_budget_before_aborting(self):
        policy = RetryPolicy(timeout_ms=50.0, retries=2, backoff=4.0)
        fixture, result = self.submit_blocked(retries=2, backoff=4.0,
                                              timeout_ms=50.0)
        assert_clean_abort(fixture, result, PHASE_SAFEPOINT, REASON_TIMEOUT,
                           rolled_back=False)
        # 50 + 200 + 800 sim-ms: every round's extension must elapse.
        assert policy.total_budget_ms() == 1_050.0
        elapsed = result.finished_at_ms - result.requested_at_ms
        assert elapsed >= policy.total_budget_ms()
