"""Unit tests for the DSU safe-point analysis: restricted-set resolution,
stack classification and return-barrier placement."""

import pytest

from repro.compiler.compile import compile_source
from repro.dsu.safepoint import (
    install_return_barriers,
    resolve_restricted,
    scan_stacks,
)
from repro.dsu.specification import UpdateSpecification
from repro.vm.frames import Frame, VMThread
from repro.vm.vm import VM

SOURCE = """
class A {
    static void outer() { middle(); }
    static void middle() { inner(); }
    static void inner() { Sys.sleep(1); }
}
class B {
    static int touch(A a) { return 0; }
}
class Main { static void main() { } }
"""


@pytest.fixture
def vm():
    machine = VM()
    machine.boot(compile_source(SOURCE, version="t"))
    return machine


def make_spec(**kwargs):
    spec = UpdateSpecification("1", "2")
    for key, value in kwargs.items():
        setattr(spec, key, value)
    return spec


def stack_of(vm, *method_names):
    """Build a thread whose stack is the given chain of A's statics."""
    thread = VMThread()
    for name in method_names:
        entry = vm.methods.lookup("A", name, "()V")
        code = vm.jit.ensure_compiled(entry)
        thread.frames.append(Frame(code, [], 0))
    vm.threads.append(thread)
    return thread


class TestResolution:
    def test_missing_methods_ignored(self, vm):
        spec = make_spec(method_body_updates={("Ghost", "spook", "()V")})
        sets = resolve_restricted(vm, spec)
        assert not sets.hard and not sets.recompile

    def test_categories_land_in_right_buckets(self, vm):
        spec = make_spec(
            method_body_updates={("A", "inner", "()V")},
            indirect_methods={("A", "middle", "()V")},
            blacklist={("A", "outer", "()V")},
        )
        sets = resolve_restricted(vm, spec)
        inner = vm.methods.lookup("A", "inner", "()V")
        middle = vm.methods.lookup("A", "middle", "()V")
        outer = vm.methods.lookup("A", "outer", "()V")
        assert sets.describes(inner) == "changed"
        assert sets.describes(middle) == "indirect"
        assert sets.describes(outer) == "changed"  # blacklist is hard too
        assert sets.describes(vm.methods.lookup("Main", "main", "()V")) is None


class TestScan:
    def test_clean_stack_is_safe(self, vm):
        stack_of(vm, "outer", "middle", "inner")
        sets = resolve_restricted(vm, make_spec())
        scan = scan_stacks(vm, sets)
        assert scan.is_safe
        assert not scan.osr_candidates

    def test_changed_method_blocks(self, vm):
        stack_of(vm, "outer", "middle")
        spec = make_spec(method_body_updates={("A", "middle", "()V")})
        scan = scan_stacks(vm, resolve_restricted(vm, spec))
        assert not scan.is_safe
        assert scan.blocking_method_names() == ["A.middle()V"]

    def test_indirect_base_frame_is_osr_candidate(self, vm):
        thread = stack_of(vm, "outer", "middle")
        spec = make_spec(indirect_methods={("A", "middle", "()V")})
        scan = scan_stacks(vm, resolve_restricted(vm, spec))
        assert scan.is_safe
        assert scan.osr_candidates == [thread.frames[1]]

    def test_indirect_opt_frame_blocks(self, vm):
        thread = stack_of(vm, "middle")
        entry = vm.methods.lookup("A", "middle", "()V")
        opt = vm.jit.compile_opt(entry)
        thread.frames[0].code = opt
        spec = make_spec(indirect_methods={("A", "middle", "()V")})
        scan = scan_stacks(vm, resolve_restricted(vm, spec))
        assert not scan.is_safe
        assert scan.blocking[0][2] == "opt-category-2"

    def test_dead_threads_ignored(self, vm):
        thread = stack_of(vm, "outer")
        thread.state = VMThread.DEAD
        spec = make_spec(method_body_updates={("A", "outer", "()V")})
        scan = scan_stacks(vm, resolve_restricted(vm, spec))
        assert scan.is_safe


class TestBarriers:
    def test_barrier_on_topmost_restricted_frame_only(self, vm):
        thread = stack_of(vm, "outer", "middle", "inner")
        spec = make_spec(
            method_body_updates={("A", "outer", "()V"), ("A", "middle", "()V")}
        )
        scan = scan_stacks(vm, resolve_restricted(vm, spec))
        installed = install_return_barriers(scan)
        assert installed == 1
        assert not thread.frames[0].return_barrier  # outer: not topmost
        assert thread.frames[1].return_barrier      # middle: topmost restricted
        assert not thread.frames[2].return_barrier  # inner: unrestricted

    def test_reinstall_is_idempotent(self, vm):
        stack_of(vm, "outer")
        spec = make_spec(method_body_updates={("A", "outer", "()V")})
        sets = resolve_restricted(vm, spec)
        scan = scan_stacks(vm, sets)
        assert install_return_barriers(scan) == 1
        scan2 = scan_stacks(vm, sets)
        assert install_return_barriers(scan2) == 0  # already armed

    def test_one_barrier_per_thread(self, vm):
        first = stack_of(vm, "outer")
        second = stack_of(vm, "outer", "middle")
        spec = make_spec(method_body_updates={("A", "outer", "()V")})
        scan = scan_stacks(vm, resolve_restricted(vm, spec))
        assert install_return_barriers(scan) == 2
        assert first.frames[0].return_barrier
        assert second.frames[0].return_barrier
