"""Tests for the semantic bytecode diff (:mod:`repro.analysis.semdiff`).

Three layers:

* unit tests for every canonicalization rule, on hand-built bytecode;
* a regression corpus of known-equivalent and known-different pairs — a
  known-different pair judged equivalent is a soundness bug, full stop;
* differential property tests (hypothesis): randomly generated method
  bodies are re-emitted through a semantics-preserving obfuscator, the
  canonicalizer must prove the pair equal, and both bodies are executed
  in the VM on randomized inputs comparing results, static side effects
  and traps.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bytecode.classfile import MethodInfo
from repro.bytecode.instructions import Instr
from repro.compiler.compile import compile_source
from repro.dsu.specification import UpdateSpecification
from repro.dsu.upt import diff_programs
from repro.analysis.semdiff import (
    Verdict,
    canonicalize_method,
    methods_equivalent,
)
from repro.vm.vm import VM, VMError


# ---------------------------------------------------------------------------
# helpers


def mk(instrs, descriptor="(I,I)I", static=True, native=False):
    slots = [i.a for i in instrs if i.op in ("LOAD", "STORE")
             and isinstance(i.a, int)]
    return MethodInfo(
        name="f", descriptor=descriptor, is_static=static, is_native=native,
        access="public", max_locals=max(slots, default=1) + 1,
        instructions=list(instrs),
    )


def I(op, a=None, b=None):  # noqa: E741 - deliberate bytecode shorthand
    return Instr(op, a, b)


def assert_equivalent(old, new):
    verdict = methods_equivalent(mk(old), mk(new))
    assert verdict.equivalent, verdict.reason


def assert_not_equivalent(old, new):
    verdict = methods_equivalent(mk(old), mk(new))
    assert not verdict.equivalent, verdict.reason


RET = [I("RETURN_VALUE")]


# ---------------------------------------------------------------------------
# canonicalization rules, one by one


class TestPeepholeRules:
    def test_const_bool_is_const_int(self):
        assert_equivalent(
            [I("CONST_BOOL", True)] + RET, [I("CONST_INT", 1)] + RET
        )
        assert_equivalent(
            [I("CONST_BOOL", False)] + RET, [I("CONST_INT", 0)] + RET
        )

    def test_compare_not_fuses_to_inverse(self):
        for op, inverse in [("EQ", "NE"), ("NE", "EQ"), ("LT", "GE"),
                            ("GE", "LT"), ("LE", "GT"), ("GT", "LE")]:
            assert_equivalent(
                [I("LOAD", 0), I("LOAD", 1), I(op), I("NOT")] + RET,
                [I("LOAD", 0), I("LOAD", 1), I(inverse)] + RET,
            )

    def test_constant_fold(self):
        assert_equivalent(
            [I("CONST_INT", 2), I("CONST_INT", 3), I("ADD")] + RET,
            [I("CONST_INT", 5)] + RET,
        )
        assert_equivalent(
            [I("CONST_INT", 2), I("CONST_INT", 3), I("SUB")] + RET,
            [I("CONST_INT", -1)] + RET,
        )
        assert_equivalent(
            [I("CONST_INT", 2), I("CONST_INT", 3), I("LT")] + RET,
            [I("CONST_INT", 1)] + RET,
        )

    def test_div_by_constant_zero_is_never_folded_away(self):
        # int(1/0) traps; a body that traps is not equivalent to one that
        # pushes any constant.
        assert_not_equivalent(
            [I("CONST_INT", 1), I("CONST_INT", 0), I("DIV")] + RET,
            [I("CONST_INT", 0)] + RET,
        )
        assert_not_equivalent(
            [I("CONST_INT", 6), I("CONST_INT", 3), I("DIV")] + RET,
            [I("CONST_INT", 2)] + RET,
        )

    def test_huge_constants_not_folded(self):
        huge = 1 << 41
        form = canonicalize_method(
            mk([I("CONST_INT", huge), I("CONST_INT", huge), I("ADD")] + RET)
        )
        ((body, _term),) = form
        assert ("ADD", None, None) in body

    def test_const_neg_and_const_not(self):
        assert_equivalent(
            [I("CONST_INT", 4), I("NEG")] + RET, [I("CONST_INT", -4)] + RET
        )
        assert_equivalent(
            [I("CONST_INT", 7), I("NOT")] + RET, [I("CONST_INT", 0)] + RET
        )
        assert_equivalent(
            [I("CONST_INT", 0), I("NOT")] + RET, [I("CONST_INT", 1)] + RET
        )

    def test_dup_pop_and_pure_push_pop_vanish(self):
        base = [I("LOAD", 0)] + RET
        assert_equivalent([I("LOAD", 0), I("DUP"), I("POP")] + RET, base)
        assert_equivalent(
            [I("CONST_INT", 9), I("POP"), I("LOAD", 0)] + RET, base
        )
        assert_equivalent(
            [I("CONST_NULL"), I("POP"), I("LOAD", 0)] + RET, base
        )
        assert_equivalent(
            [I("LOAD", 1), I("POP"), I("LOAD", 0)] + RET, base
        )

    def test_const_str_pop_is_not_removable(self):
        # CONST_STR allocates; dropping it could move the GC schedule.
        assert_not_equivalent(
            [I("CONST_STR", "x"), I("POP"), I("LOAD", 0)] + RET,
            [I("LOAD", 0)] + RET,
        )

    def test_swap_swap_and_load_store_same_slot_vanish(self):
        base = [I("LOAD", 0), I("LOAD", 1), I("SUB")] + RET
        assert_equivalent(
            [I("LOAD", 0), I("LOAD", 1), I("SWAP"), I("SWAP"), I("SUB")] + RET,
            base,
        )
        assert_equivalent(
            [I("LOAD", 0), I("STORE", 0), I("LOAD", 0), I("LOAD", 1),
             I("SUB")] + RET,
            base,
        )


class TestControlFlowRules:
    def test_dead_code_after_return_dropped(self):
        assert_equivalent(
            [I("CONST_INT", 1), I("RETURN_VALUE"), I("CONST_INT", 99),
             I("RETURN_VALUE")],
            [I("CONST_INT", 1)] + RET,
        )

    def test_forwarder_jump_collapsed(self):
        assert_equivalent(
            [I("JUMP", 1), I("CONST_INT", 1), I("RETURN_VALUE")],
            [I("CONST_INT", 1)] + RET,
        )

    def test_branch_polarity_is_an_encoding_choice(self):
        # if-false to else  vs  not + if-true to else
        old = [
            I("LOAD", 0), I("JUMP_IF_FALSE", 4),
            I("CONST_INT", 1), I("RETURN_VALUE"),
            I("CONST_INT", 2), I("RETURN_VALUE"),
        ]
        new = [
            I("LOAD", 0), I("NOT"), I("JUMP_IF_TRUE", 5),
            I("CONST_INT", 1), I("RETURN_VALUE"),
            I("CONST_INT", 2), I("RETURN_VALUE"),
        ]
        assert_equivalent(old, new)

    def test_negated_compare_swaps_branch_arms(self):
        old = [
            I("LOAD", 0), I("LOAD", 1), I("LT"), I("JUMP_IF_FALSE", 6),
            I("CONST_INT", 1), I("RETURN_VALUE"),
            I("CONST_INT", 2), I("RETURN_VALUE"),
        ]
        new = [
            I("LOAD", 0), I("LOAD", 1), I("GE"), I("JUMP_IF_FALSE", 6),
            I("CONST_INT", 2), I("RETURN_VALUE"),
            I("CONST_INT", 1), I("RETURN_VALUE"),
        ]
        assert_equivalent(old, new)

    def test_constant_condition_branch_folds(self):
        old = [
            I("CONST_INT", 1), I("JUMP_IF_FALSE", 4),
            I("CONST_INT", 7), I("RETURN_VALUE"),
            I("CONST_INT", 8), I("RETURN_VALUE"),
        ]
        assert_equivalent(old, [I("CONST_INT", 7)] + RET)

    def test_branch_with_equal_arms_keeps_condition_effect(self):
        # LOAD is pure, so the popped condition disappears entirely ...
        old = [
            I("LOAD", 0), I("JUMP_IF_FALSE", 2),
            I("CONST_INT", 9), I("RETURN_VALUE"),
        ]
        assert_equivalent(old, [I("CONST_INT", 9)] + RET)
        # ... but an effectful condition (a call) must survive the fold.
        call = I("INVOKESTATIC", "H", ("side", "()I"))
        old = [
            call, I("JUMP_IF_FALSE", 2),
            I("CONST_INT", 9), I("RETURN_VALUE"),
        ]
        form = canonicalize_method(mk(old))
        assert ("INVOKESTATIC", "H", ("side", "()I")) in form[0][0]

    def test_empty_infinite_loop_is_preserved(self):
        spin_a = mk([I("JUMP", 0), I("RETURN")], descriptor="()V")
        spin_b = mk(
            [I("CONST_INT", 1), I("CONST_INT", 1), I("EQ"),
             I("JUMP_IF_FALSE", 5), I("JUMP", 0), I("RETURN")],
            descriptor="()V",
        )
        verdict = methods_equivalent(spin_a, spin_b)
        assert verdict.equivalent, verdict.reason
        assert_not_equivalent(
            [I("JUMP", 0), I("RETURN_VALUE")], [I("CONST_INT", 1)] + RET
        )


class TestLocalSlotRenumbering:
    def test_temporaries_renumbered_by_first_use(self):
        old = [
            I("LOAD", 0), I("STORE", 2), I("LOAD", 2), I("LOAD", 1),
            I("ADD"),
        ] + RET
        new = [
            I("LOAD", 0), I("STORE", 7), I("LOAD", 7), I("LOAD", 1),
            I("ADD"),
        ] + RET
        assert_equivalent(old, new)

    def test_parameters_are_pinned(self):
        # Swapping parameter slots changes behavior; renumbering must not
        # paper over it.
        assert_not_equivalent(
            [I("LOAD", 0), I("LOAD", 1), I("SUB")] + RET,
            [I("LOAD", 1), I("LOAD", 0), I("SUB")] + RET,
        )

    def test_instance_method_self_slot_pinned(self):
        old = mk([I("LOAD", 0)] + RET, descriptor="()I", static=False)
        new = mk([I("LOAD", 0)] + RET, descriptor="()I", static=False)
        assert methods_equivalent(old, new).equivalent


class TestDontKnow:
    def test_native_method(self):
        native = mk([], native=True)
        verdict = methods_equivalent(native, native)
        assert not verdict.equivalent
        assert "don't know" in verdict.reason

    def test_signature_mismatch(self):
        old = mk([I("CONST_INT", 1)] + RET, descriptor="()I")
        new = mk([I("CONST_INT", 1)] + RET, descriptor="(I)I")
        assert not methods_equivalent(old, new).equivalent

    def test_unmodellable_bodies(self):
        assert canonicalize_method(mk([])) is None
        # control falls off the end
        assert canonicalize_method(mk([I("CONST_INT", 1)])) is None
        # branch target out of range
        assert canonicalize_method(mk([I("JUMP", 99), I("RETURN")])) is None
        verdict = methods_equivalent(mk([]), mk([]))
        assert not verdict.equivalent
        assert "don't know" in verdict.reason


# ---------------------------------------------------------------------------
# regression corpus: source-level pairs


def _method(source, cls="A", name="f"):
    cfs = compile_source(source + " class Main { static void main() { } }")
    for method in cfs[cls].methods.values():
        if method.name == name:
            return method
    raise AssertionError(f"no {cls}.{name}")


EQUIVALENT_SOURCES = [
    # dead code: explicit else vs fall-through
    ("class A { static int f(int x) { if (x < 3) { return 1; } return 2; } }",
     "class A { static int f(int x) { if (x < 3) { return 1; } "
     "else { return 2; } } }"),
    # negated condition with swapped arms
    ("class A { static int f(int x) { if (!(x < 3)) { return 2; } "
     "else { return 1; } } }",
     "class A { static int f(int x) { if (x >= 3) { return 2; } "
     "return 1; } }"),
    # spinner encodings
    ("class A { static void f() { while (true) { } } }",
     "class A { static void f() { while (1 == 1) { } } }"),
    # trailing unreachable statement
    ("class A { static int f(int x) { return x + 1; } }",
     "class A { static int f(int x) { return x + 1; } }"),
]

DIFFERENT_SOURCES = [
    ("class A { static int f(int x) { return x + 1; } }",
     "class A { static int f(int x) { return x + 2; } }"),
    ("class A { static int f(int x) { return x - 1; } }",
     "class A { static int f(int x) { return 1 - x; } }"),
    ("class A { static int f(int x) { if (x < 3) { return 1; } return 2; } }",
     "class A { static int f(int x) { if (x < 3) { return 2; } return 1; } }"),
    ("class A { static int f(int x) { if (x < 3) { return 1; } return 2; } }",
     "class A { static int f(int x) { if (x <= 3) { return 1; } return 2; } }"),
    ("class A { int v; int f() { return this.v; } }",
     "class A { int v; int w; int f() { return this.w; } }"),
]


class TestSourceCorpus:
    @pytest.mark.parametrize("old_src,new_src", EQUIVALENT_SOURCES)
    def test_known_equivalent(self, old_src, new_src):
        verdict = methods_equivalent(_method(old_src), _method(new_src))
        assert verdict.equivalent, verdict.reason

    @pytest.mark.parametrize("old_src,new_src", DIFFERENT_SOURCES)
    def test_known_different_never_equated(self, old_src, new_src):
        verdict = methods_equivalent(_method(old_src), _method(new_src))
        assert not verdict.equivalent, verdict.reason


class TestKnownDifferentBytecode:
    def test_changed_constant(self):
        assert_not_equivalent(
            [I("CONST_INT", 1)] + RET, [I("CONST_INT", 2)] + RET
        )

    def test_different_field(self):
        assert_not_equivalent(
            [I("LOAD", 0), I("GETFIELD", "A", "v")] + RET,
            [I("LOAD", 0), I("GETFIELD", "A", "w")] + RET,
        )

    def test_different_comparison(self):
        assert_not_equivalent(
            [I("LOAD", 0), I("LOAD", 1), I("LT")] + RET,
            [I("LOAD", 0), I("LOAD", 1), I("LE")] + RET,
        )

    def test_return_kind_differs(self):
        old = mk([I("RETURN")], descriptor="()V")
        new = mk([I("CONST_INT", 0), I("RETURN_VALUE")], descriptor="()V")
        assert not methods_equivalent(old, new).equivalent


# ---------------------------------------------------------------------------
# differential property tests


RUNNER_SOURCE = (
    "class H { static int acc; "
    "  static int f(int a, int b) { return 0; } "
    "  static int g() { return H.acc; } } "
    "class Main { static void main() { } }"
)


def run_body(instructions, args):
    """Execute ``instructions`` as the body of ``H.f(I,I)I`` and observe
    everything observable: result, the ``H.acc`` static, or the trap."""
    classfiles = compile_source(RUNNER_SOURCE)
    method = classfiles["H"].get_method("f", "(I,I)I")
    slots = [i.a for i in instructions
             if i.op in ("LOAD", "STORE") and isinstance(i.a, int)]
    method.instructions = list(instructions)
    method.max_locals = max(slots + [1]) + 1
    vm = VM()
    vm.boot(classfiles)
    vm.registry.get("H")
    entry = vm.methods.lookup("H", "f", "(I,I)I")
    try:
        result = vm.run_static_method_synchronously(entry, list(args))
    except VMError as error:
        return ("trap", str(error).split(":")[0])
    acc = vm.run_static_method_synchronously(
        vm.methods.lookup("H", "g", "()I")
    )
    return ("ok", result, acc)


# Expression trees over (a, b), *typed* so the generated bodies pass the
# VM's bytecode verifier (it distinguishes int from bool on the stack).
# The programs are loop-free, so execution always terminates (DIV/MOD may
# trap — that is an observation, not a failure).

_ARITH_OPS = ["ADD", "SUB", "MUL", "DIV", "MOD"]
_CMP_OPS = ["EQ", "NE", "LT", "LE", "GT", "GE"]


def int_exprs(depth=0):
    leaves = st.one_of(
        st.integers(-40, 40).map(lambda v: ("const", v)),
        st.sampled_from([("arg", 0), ("arg", 1)]),
    )
    if depth >= 3:
        return leaves
    return st.one_of(
        leaves,
        st.tuples(st.just("neg"), st.deferred(lambda: int_exprs(depth + 1))),
        st.tuples(st.just("temp"), st.deferred(lambda: int_exprs(depth + 1))),
        st.tuples(
            st.just("arith"), st.sampled_from(_ARITH_OPS),
            st.deferred(lambda: int_exprs(depth + 1)),
            st.deferred(lambda: int_exprs(depth + 1)),
        ),
        st.tuples(
            st.just("cond"),
            st.deferred(lambda: bool_exprs(depth + 1)),
            st.deferred(lambda: int_exprs(depth + 1)),
            st.deferred(lambda: int_exprs(depth + 1)),
        ),
    )


def bool_exprs(depth=0):
    leaves = st.sampled_from([("bconst", True), ("bconst", False)])
    if depth >= 3:
        return leaves
    return st.one_of(
        leaves,
        st.tuples(st.just("not"), st.deferred(lambda: bool_exprs(depth + 1))),
        st.tuples(
            st.just("cmp"), st.sampled_from(_CMP_OPS),
            st.deferred(lambda: int_exprs(depth + 1)),
            st.deferred(lambda: int_exprs(depth + 1)),
        ),
    )


class _Label:
    __slots__ = ()


class Emitter:
    """Emits an expression tree to bytecode. With an ``rng`` it applies
    random *sound* re-encodings — exactly the idioms the canonicalizer
    normalizes — so plain and obfuscated emissions must canonicalize to
    the same form."""

    def __init__(self, rng=None, temp_base=2, temp_stride=1):
        self.rng = rng
        self.items = []
        self.next_temp = temp_base
        self.temp_stride = temp_stride

    def _chance(self, p):
        return self.rng is not None and self.rng.random() < p

    def emit(self, op, a=None, b=None):
        self.items.append(Instr(op, a, b))

    def jump(self, op, label):
        self.items.append((op, label))

    def mark(self, label):
        self.items.append(("mark", label))

    def junk(self):
        """Stack-neutral noise the canonicalizer removes."""
        choice = self.rng.randrange(3)
        if choice == 0:
            self.emit("CONST_INT", self.rng.randrange(100))
            self.emit("POP")
        elif choice == 1:
            self.emit("LOAD", 0)
            self.emit("STORE", 0)
        else:
            self.emit("LOAD", self.rng.randrange(2))
            self.emit("POP")

    def expr(self, tree):
        kind = tree[0]
        if kind == "const":
            value = tree[1]
            if self._chance(0.3):
                delta = self.rng.randrange(-20, 20)
                self.emit("CONST_INT", value - delta)
                self.emit("CONST_INT", delta)
                self.emit("ADD")
            else:
                self.emit("CONST_INT", value)
        elif kind == "bconst":
            # CONST_BOOL and a comparison of constants both canonicalize
            # to CONST_INT 1/0.
            if self._chance(0.4):
                anchor = self.rng.randrange(-5, 5)
                self.emit("CONST_INT", anchor)
                self.emit("CONST_INT", anchor if tree[1] else anchor + 1)
                self.emit("EQ")
            else:
                self.emit("CONST_BOOL", tree[1])
        elif kind == "arg":
            self.emit("LOAD", tree[1])
        elif kind == "neg":
            self.expr(tree[1])
            self.emit("NEG")
        elif kind == "not":
            self.expr(tree[1])
            self.emit("NOT")
        elif kind == "temp":
            slot = self.next_temp
            self.next_temp += self.temp_stride
            self.expr(tree[1])
            self.emit("STORE", slot)
            self.emit("LOAD", slot)
        elif kind in ("arith", "cmp"):
            _, op, left, right = tree
            self.expr(left)
            self.expr(right)
            if self._chance(0.2):
                self.emit("SWAP")
                self.emit("SWAP")
            from repro.analysis.semdiff import _COMPARE_INVERSE
            if kind == "cmp" and self._chance(0.4):
                self.emit(_COMPARE_INVERSE[op])
                self.emit("NOT")
            else:
                self.emit(op)
        elif kind == "cond":
            _, cond, then_tree, else_tree = tree
            otherwise, end = _Label(), _Label()
            self.expr(cond)
            if self._chance(0.4):
                self.emit("NOT")
                self.jump("JUMP_IF_TRUE", otherwise)
            else:
                self.jump("JUMP_IF_FALSE", otherwise)
            self.expr(then_tree)
            self.jump("JUMP", end)
            if self._chance(0.3):
                # unreachable (but still type-correct) junk between arms
                self.emit("CONST_INT", 42)
                self.emit("RETURN_VALUE")
            self.mark(otherwise)
            self.expr(else_tree)
            if self._chance(0.3):
                hop = _Label()
                self.jump("JUMP", hop)
                self.mark(hop)
            self.mark(end)
        else:  # pragma: no cover - generator invariant
            raise AssertionError(kind)
        if self._chance(0.15):
            self.junk()

    def assemble(self, tree):
        self.expr(tree)
        self.emit("DUP")
        self.emit("PUTSTATIC", "H", "acc")
        self.emit("RETURN_VALUE")
        pcs = {}
        pc = 0
        for item in self.items:
            if isinstance(item, tuple) and item[0] == "mark":
                pcs[id(item[1])] = pc
            else:
                pc += 1
        out = []
        for item in self.items:
            if isinstance(item, Instr):
                out.append(item)
            elif item[0] == "mark":
                continue
            else:
                out.append(Instr(item[0], pcs[id(item[1])]))
        return out


INPUTS = [(0, 0), (1, -1), (-7, 3), (40, 2)]


class TestDifferentialEquivalence:
    @given(int_exprs(), st.integers(0, 2 ** 32))
    @settings(max_examples=40, deadline=None)
    def test_obfuscated_reencoding_proves_equal_and_runs_equal(
        self, tree, seed
    ):
        plain = Emitter().assemble(tree)
        obfuscated = Emitter(
            rng=random.Random(seed), temp_base=5, temp_stride=3
        ).assemble(tree)
        old = mk(plain)
        new = mk(obfuscated)
        verdict = methods_equivalent(old, new)
        assert verdict.equivalent, (
            f"{verdict.reason}\nplain: {plain}\nobf: {obfuscated}"
        )
        for args in INPUTS:
            assert run_body(plain, args) == run_body(obfuscated, args)

    @given(int_exprs(), st.integers(0, 2 ** 32))
    @settings(max_examples=25, deadline=None)
    def test_mutations_judged_equivalent_must_behave_identically(
        self, tree, seed
    ):
        """The soundness direction: mutate the program; if the engine
        still claims equivalence, execution must agree everywhere we
        look."""
        rng = random.Random(seed)
        mutated = _mutate(tree, rng)
        old = mk(Emitter().assemble(tree))
        new = mk(Emitter().assemble(mutated))
        if methods_equivalent(old, new).equivalent:
            for args in INPUTS:
                assert run_body(old.instructions, args) == run_body(
                    new.instructions, args
                )


def _mutate(tree, rng):
    """A type-preserving random mutation — usually behavior-changing."""
    kind = tree[0]
    if kind == "const":
        return ("const", tree[1] + rng.choice([-1, 1, 10]))
    if kind == "bconst":
        return ("bconst", not tree[1])
    if kind == "arg":
        return ("arg", 1 - tree[1])
    if kind in ("neg", "not", "temp"):
        return (kind, _mutate(tree[1], rng))
    if kind in ("arith", "cmp"):
        _, op, left, right = tree
        ops = _ARITH_OPS if kind == "arith" else _CMP_OPS
        choice = rng.randrange(3)
        if choice == 0:
            return (kind, rng.choice(ops), left, right)
        if choice == 1:
            return (kind, op, right, left)
        return (kind, op, _mutate(left, rng), right)
    _, cond, then_tree, else_tree = tree
    return ("cond", cond, else_tree, then_tree)


# ---------------------------------------------------------------------------
# UPT integration: downgrades and the specification format


DOWNGRADE_V1 = """
class Calc {
    static int classify(int x) { if (x < 3) { return 1; } return 2; }
    static int scale(int x) { return x * 2; }
}
class Main { static void main() { } }
"""

# classify is re-encoded (provably equivalent), scale genuinely changes.
DOWNGRADE_V2 = """
class Calc {
    static int classify(int x) { if (x >= 3) { return 2; } else { return 1; } }
    static int scale(int x) { return x * 3; }
}
class Main { static void main() { } }
"""


class TestDiffProgramsDowngrade:
    def _specs(self):
        old = compile_source(DOWNGRADE_V1, version="1.0")
        new = compile_source(DOWNGRADE_V2, version="2.0")
        raw = diff_programs(old, new, "1.0", "2.0", minimize=False)
        minimized = diff_programs(old, new, "1.0", "2.0")
        return raw, minimized

    def test_equivalent_body_change_downgraded(self):
        raw, minimized = self._specs()
        classify = ("Calc", "classify", "(I)I")
        scale = ("Calc", "scale", "(I)I")
        assert classify in raw.method_body_updates
        assert classify not in minimized.method_body_updates
        assert classify in minimized.equivalent_methods
        assert "proven equivalent" in minimized.minimization_reasons[classify]
        # the real change survives, with its non-proof recorded
        assert scale in minimized.method_body_updates
        assert "not proven" in minimized.minimization_reasons[scale]

    def test_restricted_set_strictly_shrinks(self):
        raw, minimized = self._specs()
        assert minimized.restricted_size() < raw.restricted_size()
        assert minimized.restricted_keys() <= raw.restricted_keys()

    def test_spec_roundtrip_preserves_minimization_fields(self):
        _, minimized = self._specs()
        restored = UpdateSpecification.from_json(minimized.to_json())
        assert restored.minimized
        assert restored.equivalent_methods == minimized.equivalent_methods
        assert restored.escaped_indirect == minimized.escaped_indirect
        assert restored.minimization_reasons == minimized.minimization_reasons

    def test_verdict_shape(self):
        verdict = Verdict(True, "why")
        assert verdict.equivalent and verdict.reason == "why"
