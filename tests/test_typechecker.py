"""Unit tests for the jmini type checker."""

import pytest

from repro.lang.errors import TypeError_
from repro.lang.parser import parse
from repro.lang.typechecker import typecheck


def check(source, **kwargs):
    return typecheck(parse(source), **kwargs)


def check_body(body, prefix=""):
    return check("%s class C { void m() { %s } }" % (prefix, body))


def assert_rejected(source, fragment, **kwargs):
    with pytest.raises(TypeError_) as excinfo:
        check(source, **kwargs)
    assert fragment in str(excinfo.value)


class TestExpressionTyping:
    def test_arithmetic(self):
        check_body("int x = 1 + 2 * 3 - 4 / 5 % 6;")

    def test_arithmetic_type_error(self):
        assert_rejected("class C { void m() { int x = 1 + true; } }", "operand")

    def test_comparison_yields_bool(self):
        check_body("bool b = 1 < 2;")

    def test_logical_ops(self):
        check_body("bool b = true && false || !true;")

    def test_logical_requires_bool(self):
        assert_rejected("class C { void m() { bool b = 1 && true; } }", "must be bool")

    def test_string_concat(self):
        check_body('string s = "a" + 1 + true + "b";')

    def test_string_equality(self):
        check_body('bool b = "a" == "b";')

    def test_int_string_comparison_rejected(self):
        assert_rejected('class C { void m() { bool b = 1 == "a"; } }', "cannot compare")

    def test_null_comparison_with_reference(self):
        check_body("C c = null; bool b = c == null;")

    def test_string_methods(self):
        check_body('int n = "abc".length(); string[] parts = "a@b".split("@");')

    def test_split_with_limit(self):
        check_body('string[] parts = "a@b@c".split("@", 2);')

    def test_unknown_string_method(self):
        assert_rejected('class C { void m() { "a".frobnicate(); } }', "no method")


class TestNamesAndFields:
    def test_local_resolution(self):
        check_body("int x = 1; int y = x + 1;")

    def test_unknown_name(self):
        assert_rejected("class C { void m() { int x = nope; } }", "unknown name")

    def test_duplicate_local_with_different_type_rejected(self):
        assert_rejected(
            'class C { void m() { int x = 1; { string x = "s"; } } }',
            "duplicate local",
        )

    def test_redeclaration_at_same_type_reuses_slot(self):
        # Two `for (int i ...)` loops in one method are idiomatic; the slot
        # keeps a single static type, which the GC stack maps require.
        check(
            "class C { void m() {"
            " for (int i = 0; i < 3; i = i + 1) { }"
            " for (int i = 9; i > 0; i = i - 1) { }"
            " } }"
        )

    def test_implicit_this_field(self):
        check("class C { int x; void m() { x = x + 1; } }")

    def test_inherited_field(self):
        check("class A { int x; } class B extends A { void m() { x = 1; } }")

    def test_static_field_access(self):
        check("class C { static int count; void m() { C.count = C.count + 1; } }")

    def test_static_field_via_bare_name(self):
        check("class C { static int count; void m() { count = count + 1; } }")

    def test_instance_field_from_static_context_rejected(self):
        assert_rejected(
            "class C { int x; static void m() { x = 1; } }", "static context"
        )

    def test_field_access_through_reference(self):
        check("class A { int x; } class C { void m(A a) { int y = a.x; } }")

    def test_array_length(self):
        check_body("int[] xs = new int[3]; int n = xs.length;")


class TestAccessControl:
    def test_private_field_rejected_across_classes(self):
        assert_rejected(
            "class A { private int x; } class C { void m(A a) { int y = a.x; } }",
            "private",
        )

    def test_private_field_allowed_same_class(self):
        check("class A { private int x; void m() { x = 1; } }")

    def test_protected_field_allowed_in_subclass(self):
        check("class A { protected int x; } class B extends A { void m() { x = 1; } }")

    def test_protected_field_rejected_elsewhere(self):
        assert_rejected(
            "class A { protected int x; } class C { void m(A a) { int y = a.x; } }",
            "protected",
        )

    def test_private_method_rejected(self):
        assert_rejected(
            "class A { private void p() {} } class C { void m(A a) { a.p(); } }",
            "private",
        )

    def test_access_checks_can_be_disabled(self):
        source = "class A { private int x; } class C { void m(A a) { int y = a.x; } }"
        check(source, access_checks=False)


class TestFinalFields:
    def test_final_field_assignable_in_constructor(self):
        check("class C { final int x; C() { this.x = 1; } }")

    def test_final_field_not_assignable_in_method(self):
        assert_rejected(
            "class C { final int x; void m() { this.x = 1; } }", "final"
        )

    def test_final_field_not_assignable_from_other_class(self):
        assert_rejected(
            "class A { final int x; A() { this.x = 1; } }"
            "class C { void m(A a) { a.x = 2; } }",
            "final",
        )

    def test_final_writes_can_be_allowed(self):
        source = "class A { final int x; } class C { void m(A a) { a.x = 2; } }"
        check(source, allow_final_writes=True)


class TestMethodsAndCalls:
    def test_virtual_call(self):
        check("class A { int f() { return 1; } } class C { void m(A a) { int x = a.f(); } }")

    def test_static_call(self):
        check("class A { static int f() { return 1; } } class C { void m() { int x = A.f(); } }")

    def test_unqualified_instance_call(self):
        check("class C { int f() { return 1; } void m() { int x = f(); } }")

    def test_unqualified_static_call(self):
        check("class C { static int f() { return 1; } void m() { int x = f(); } }")

    def test_overload_resolution_exact(self):
        check(
            "class C { void f(int x) {} void f(string s) {} "
            'void m() { f(1); f("a"); } }'
        )

    def test_overload_resolution_by_subtype(self):
        check(
            "class A {} class B extends A {}"
            "class C { void f(A a) {} void m() { f(new B()); } }"
        )

    def test_wrong_arg_count(self):
        assert_rejected(
            "class C { void f(int x) {} void m() { f(1, 2); } }", "no method"
        )

    def test_wrong_arg_type(self):
        assert_rejected(
            'class C { void f(int x) {} void m() { f("a"); } }', "no method"
        )

    def test_override_must_keep_return_type(self):
        assert_rejected(
            "class A { int f() { return 1; } }"
            "class B extends A { string f() { return \"x\"; } }",
            "return type",
        )

    def test_super_method_call(self):
        check(
            "class A { int f() { return 1; } }"
            "class B extends A { int f() { return super.f() + 1; } }"
        )

    def test_void_cannot_be_assigned(self):
        assert_rejected(
            "class C { void f() {} void m() { int x = f(); } }", "cannot assign"
        )

    def test_prelude_natives_visible(self):
        check('class C { void m() { Sys.print("hi"); int t = Sys.time(); } }')

    def test_str_conversions(self):
        check_body('string s = Str.fromInt(42); int n = Str.toInt("17");')


class TestConstructors:
    def test_implicit_default_constructor(self):
        check("class A {} class C { void m() { A a = new A(); } }")

    def test_explicit_constructor(self):
        check("class A { int x; A(int x0) { this.x = x0; } } "
              "class C { void m() { A a = new A(5); } }")

    def test_missing_constructor_args(self):
        assert_rejected(
            "class A { A(int x) {} } class C { void m() { A a = new A(); } }",
            "no matching constructor",
        )

    def test_super_constructor_required(self):
        assert_rejected(
            "class A { A(int x) {} } class B extends A { B() {} }",
            "super",
        )

    def test_super_constructor_call(self):
        check("class A { A(int x) {} } class B extends A { B() { super(7); } }")


class TestStatementsAndFlow:
    def test_condition_must_be_bool(self):
        assert_rejected("class C { void m() { if (1) {} } }", "must be bool")

    def test_return_type_checked(self):
        assert_rejected(
            'class C { int m() { return "a"; } }', "cannot assign"
        )

    def test_missing_return_detected(self):
        assert_rejected(
            "class C { int m() { if (true) { return 1; } } }", "without returning"
        )

    def test_return_on_both_branches_accepted(self):
        check("class C { int m() { if (true) { return 1; } else { return 2; } } }")

    def test_void_return_with_value_rejected(self):
        assert_rejected("class C { void m() { return 1; } }", "void method")


class TestSubtypingAndCasts:
    def test_upcast_assignment(self):
        check("class A {} class B extends A { } class C { void m() { A a = new B(); } }")

    def test_downcast_needs_cast(self):
        assert_rejected(
            "class A {} class B extends A {} class C { void m(A a) { B b = a; } }",
            "cannot assign",
        )

    def test_explicit_downcast(self):
        check("class A {} class B extends A {} class C { void m(A a) { B b = (B)a; } }")

    def test_impossible_cast_rejected(self):
        assert_rejected(
            "class A {} class B {} class C { void m(A a) { B b = (B)a; } }",
            "impossible cast",
        )

    def test_instanceof(self):
        check("class A {} class B extends A {} "
              "class C { void m(A a) { bool b = a instanceof B; } }")

    def test_everything_assignable_to_object(self):
        check_body('Object o1 = "s"; Object o2 = new int[3]; Object o3 = null;')

    def test_array_invariance(self):
        assert_rejected(
            "class A {} class B extends A {} "
            "class C { void m() { A[] xs = new B[3]; } }",
            "cannot assign",
        )


class TestClassTable:
    def test_duplicate_class_rejected(self):
        assert_rejected("class A {} class A {}", "duplicate class")

    def test_unknown_superclass_rejected(self):
        assert_rejected("class A extends Nope {}", "unknown class")

    def test_cyclic_inheritance_rejected(self):
        assert_rejected("class A extends B {} class B extends A {}", "cyclic")

    def test_unknown_field_type_rejected(self):
        assert_rejected("class A { Nope x; }", "unknown type")

    def test_cannot_redefine_prelude_class(self):
        assert_rejected("class Sys {}", "duplicate class")
