"""The update collection is skipped when nothing changes layout, and the
unavoidable one runs behind a to-space sizing pre-flight.

Covers the two halves of the fix:

* an update whose prepared transform map is empty (method-body-only and
  indirect-method updates) must not flip, copy, or touch the collector at
  all — the ``gc`` pause is exactly zero;
* a layout-changing update estimates its to-space demand (live cells plus
  the worst-case double copy of updated-class instances) *before* copying
  anything, and either aborts with an actionable ``heap-preflight`` reason
  or — with ``heap_grow`` — grows the heap in place, in a way the update
  transaction can roll back exactly.
"""

import pytest

from repro.dsu.faults import FaultInjector, FaultPlan
from repro.dsu.policy import UpdatePolicy
from repro.vm.heap import HEAP_BASE, Heap
from tests.dsu_helpers import UpdateFixture
from tests.test_dsu_faults import (
    assert_clean_abort,
    assert_old_version_workload_completes,
    pool_fields,
)
from tests.test_gc_extras import UPDATE_V1, UPDATE_V2

BODY_V1 = """
class Greeter { static string greet() { return "v1"; } }
class Item { int a; }
class Keep { static Item it; }
class Main {
    static int rounds;
    static void main() {
        Keep.it = new Item();
        while (rounds < 60) {
            Sys.print(Greeter.greet());
            Sys.sleep(10);
            rounds = rounds + 1;
        }
    }
}
"""
BODY_V2 = BODY_V1.replace('return "v1";', 'return "v2";')


def kept_item_address(vm):
    keep = vm.registry.get("Keep")
    return vm.jtoc.read(keep.static_slots["it"])


class TestGCSkip:
    def test_body_only_update_skips_the_collection(self):
        fixture = UpdateFixture(BODY_V1).start()
        holder = fixture.update_at(55, BODY_V2)
        fixture.run(until_ms=40)
        vm = fixture.vm
        collections_before = vm.collector.collections
        stats_before = vm.last_gc_stats
        space_before = vm.heap.current_space
        address_before = kept_item_address(vm)
        fixture.run(until_ms=2_000)
        result = holder["result"]
        assert result.succeeded, result.reason
        # The GC phase ran for exactly zero simulated time...
        assert result.phase_ms["gc"] == 0.0
        # ...because no collection happened: no flip, no copy, no stats.
        assert vm.collector.collections == collections_before
        assert vm.last_gc_stats is stats_before
        assert vm.heap.current_space == space_before
        assert kept_item_address(vm) is not None
        assert kept_item_address(vm) == address_before
        assert vm.metrics.counters["dsu.gc_skipped"].value == 1
        # The new code is live regardless.
        fixture.run(until_ms=10_000)
        assert "v2" in fixture.console

    def test_skip_is_marked_in_the_trace(self):
        fixture = UpdateFixture(BODY_V1).start()
        holder = fixture.update_at(55, BODY_V2)
        fixture.run(until_ms=2_000)
        assert holder["result"].succeeded
        tracer = fixture.vm.tracer
        update = next(s for root in tracer.roots for s in root.walk()
                      if s.name == "dsu.update")
        assert update.args["gc_skipped"] is True
        assert update.find("dsu.gc.skipped")
        assert not update.find("gc.collect")

    def test_layout_update_still_collects(self):
        fixture = UpdateFixture(UPDATE_V1, heap_cells=1 << 15).start()
        holder = fixture.update_at(55, UPDATE_V2)
        fixture.run(until_ms=40)
        collections_before = fixture.vm.collector.collections
        fixture.run(until_ms=2_000)
        result = holder["result"]
        assert result.succeeded, result.reason
        assert result.phase_ms["gc"] > 0.0
        assert fixture.vm.collector.collections == collections_before + 1
        assert result.objects_transformed == 50
        assert "dsu.gc_skipped" not in fixture.vm.metrics.counters


class TestPreflightAbort:
    def test_abort_reason_is_actionable(self):
        fixture = UpdateFixture(UPDATE_V1, heap_cells=900).start()
        holder = fixture.update_at(55, UPDATE_V2)
        fixture.run(until_ms=2_000)
        result = holder["result"]
        assert_clean_abort(fixture, result, "gc", "heap-preflight")
        # Estimated vs available cells and a suggested minimum heap size.
        assert "to-space cells" in result.reason
        assert "available" in result.reason
        assert "--dsu-heap-grow" in result.reason
        assert "at least" in result.reason and "--heap-cells" in result.reason
        assert_old_version_workload_completes(fixture)

    def test_suggested_heap_size_actually_works(self):
        fixture = UpdateFixture(UPDATE_V1, heap_cells=900).start()
        holder = fixture.update_at(55, UPDATE_V2)
        fixture.run(until_ms=2_000)
        reason = holder["result"].reason
        suggested = int(
            reason.split("at least ")[1].split(" cells")[0]
        )
        retry = UpdateFixture(UPDATE_V1, heap_cells=suggested).start()
        retry_holder = retry.update_at(55, UPDATE_V2)
        retry.run(until_ms=2_000)
        assert retry_holder["result"].succeeded, retry_holder["result"].reason

    def test_mid_copy_injected_oom_still_aborts_cleanly(self):
        # The pre-flight passes (plenty of headroom) but a fault injector
        # blows the copy loop up mid-way: the old mid-copy abort path must
        # still roll back and classify as plain oom, not heap-preflight.
        fixture = UpdateFixture(UPDATE_V1)
        fixture.engine.fault_injector = FaultInjector(
            FaultPlan(gc_oom_after_copies=5)
        )
        fixture.start()
        holder = fixture.update_at(55, UPDATE_V2)
        fixture.run(until_ms=2_000)
        assert_clean_abort(fixture, holder["result"], "gc", "oom")
        assert_old_version_workload_completes(fixture)


class TestHeapGrow:
    #: every update in this class opts into in-place growth at the
    #: policy level (the engine-wide kwarg is a deprecated shim now)
    GROW = UpdatePolicy(heap_grow=True)

    def grown_fixture(self):
        fixture = UpdateFixture(UPDATE_V1, heap_cells=900)
        return fixture.start()

    def test_undersized_update_succeeds_by_growing(self):
        fixture = self.grown_fixture()
        holder = fixture.update_at(55, UPDATE_V2, policy=self.GROW)
        fixture.run(until_ms=2_000)
        result = holder["result"]
        assert result.succeeded, result.reason
        vm = fixture.vm
        assert vm.heap.size > 900
        assert len(vm.heap.cells) == vm.heap.size
        # Equal-semispace invariant holds after growth.
        bounds = vm.heap._space_bounds
        assert bounds[0][1] - bounds[0][0] == bounds[1][1] - bounds[1][0]
        assert pool_fields(vm) == ["a", "b", "c"]
        assert vm.metrics.counters["dsu.heap_grown"].value == 1
        # The grown heap keeps working: run to completion, then collect.
        fixture.run(until_ms=10_000)
        vm.collect()
        assert pool_fields(vm) == ["a", "b", "c"]

    def test_growth_from_high_semispace_normalizes_first(self):
        fixture = self.grown_fixture()
        fixture.run(until_ms=40)
        vm = fixture.vm
        vm.collect()  # live data now sits in the high semispace
        assert vm.heap.current_space == 1
        old_size = vm.heap.size
        holder = fixture.update_at(55, UPDATE_V2, policy=self.GROW)
        fixture.run(until_ms=2_000)
        result = holder["result"]
        assert result.succeeded, result.reason
        # The normalize path pins the new halfway point past the old heap
        # end, so the grown heap is at least twice the old size.
        assert vm.heap.size >= 2 * old_size
        assert pool_fields(vm) == ["a", "b", "c"]

    def test_growth_rolls_back_with_the_transaction(self):
        fixture = self.grown_fixture()
        fixture.engine.fault_injector = FaultInjector(
            FaultPlan(transformer_raise_at=0)
        )
        fixture.run(until_ms=40)
        vm = fixture.vm
        size_before = vm.heap.size
        cells_before = len(vm.heap.cells)
        bounds_before = vm.heap._space_bounds
        space_before = vm.heap.current_space
        holder = fixture.update_at(55, UPDATE_V2, policy=self.GROW)
        fixture.run(until_ms=2_000)
        result = holder["result"]
        assert_clean_abort(fixture, result, "transform", "injected-fault")
        # The in-place growth was undone: pre-update geometry, exactly.
        assert vm.heap.size == size_before == 900
        assert len(vm.heap.cells) == cells_before
        assert vm.heap._space_bounds == bounds_before
        assert vm.heap.current_space == space_before
        assert_old_version_workload_completes(fixture)

    def test_growth_rollback_from_high_semispace(self):
        # The hardest rollback: snapshot taken with live data in the high
        # space, growth normalizes to the low space first, the update GC
        # copies into the appended region, then a transformer fault forces
        # the whole thing — normalize included — to unwind.
        fixture = self.grown_fixture()
        fixture.engine.fault_injector = FaultInjector(
            FaultPlan(transformer_raise_at=0)
        )
        fixture.run(until_ms=40)
        vm = fixture.vm
        vm.collect()
        assert vm.heap.current_space == 1
        size_before = vm.heap.size
        holder = fixture.update_at(55, UPDATE_V2, policy=self.GROW)
        fixture.run(until_ms=2_000)
        result = holder["result"]
        assert_clean_abort(fixture, result, "transform", "injected-fault")
        assert vm.heap.size == size_before
        assert vm.heap.current_space == 1
        assert_old_version_workload_completes(fixture)


class TestHeapGrowUnit:
    def test_grow_preserves_contents_and_invariants(self):
        heap = Heap(400)
        address = heap.allocate_raw(8)
        for i in range(8):
            heap.write(address + i, 100 + i)
        used = heap.used_cells
        heap.grow(1000)
        assert heap.size == 1000
        assert len(heap.cells) == 1000
        assert heap.used_cells == used
        assert [heap.read(address + i) for i in range(8)] == list(range(100, 108))
        start0, end0 = heap._space_bounds[0]
        start1, end1 = heap._space_bounds[1]
        assert (start0, start1) == (HEAP_BASE, 500 + HEAP_BASE)
        assert end0 - start0 == end1 - start1 == heap.semispace_capacity
        assert heap.ceiling == heap.space_end

    def test_grow_rounds_odd_sizes_up(self):
        heap = Heap(400)
        heap.grow(1001)
        assert heap.size == 1002

    def test_grow_refuses_shrink(self):
        heap = Heap(400)
        with pytest.raises(ValueError, match="cannot grow"):
            heap.grow(400)

    def test_grow_refuses_high_semispace(self):
        heap = Heap(400)
        heap.current_space = 1
        heap.bump = heap.space_start
        heap.ceiling = heap.space_end
        with pytest.raises(ValueError, match="low semispace"):
            heap.grow(1000)
