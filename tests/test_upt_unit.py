"""Unit tests for the Update Preparation Tool: diff classification, stub
generation and default-transformer generation."""

import pytest

from repro.compiler.compile import compile_source
from repro.dsu.upt import (
    diff_programs,
    flattened_instance_fields,
    generate_default_transformers,
    generate_new_program_stubs,
    generate_old_stubs,
    prepare_update,
    version_prefix,
)

V1 = """
class User {
    private string name;
    int age;
    static int count;
    User(string n) { this.name = n; }
    string describe() { return name + ":" + age; }
    void birthday() { age = age + 1; }
}
class Util {
    static int double2(int x) { return x + x; }
    static string label(User u) { return u.describe(); }
}
class Main { static void main() { } }
"""

# age -> years (rename = delete+add), new email field, describe body change,
# birthday deleted, a new class added, Util.label indirect (touches User).
V2 = """
class User {
    private string name;
    int years;
    string email;
    static int count;
    User(string n) { this.name = n; }
    string describe() { return name + "/" + years + "/" + email; }
}
class Util {
    static int double2(int x) { return x + x; }
    static string label(User u) { return u.describe(); }
}
class Audit { static int events; }
class Main { static void main() { } }
"""


@pytest.fixture(scope="module")
def spec():
    old = compile_source(V1, version="1.0")
    new = compile_source(V2, version="2.0")
    return diff_programs(old, new, "1.0", "2.0")


class TestDiffClassification:
    def test_class_update_detected(self, spec):
        assert spec.class_updates == {"User"}

    def test_added_class(self, spec):
        assert spec.added_classes == {"Audit"}

    def test_deleted_method_is_category1(self, spec):
        assert ("User", "birthday", "()V") in spec.deleted_methods
        assert ("User", "birthday", "()V") in spec.category1()

    def test_changed_method_in_updated_class_is_category1(self, spec):
        assert ("User", "describe", "()S") in spec.category1()

    def test_indirect_method_detected(self, spec):
        # Util.label's bytecode is unchanged but calls a User method
        # virtually: its compiled code bakes User's TIB layout. The raw
        # diff restricts it as category 2; the semantic-diff minimizer
        # proves describe()'s TIB slot survives this update (describe is
        # introduced first in both versions), so the minimized spec lets
        # the method escape restriction.
        key = ("Util", "label", "(LUser;)S")
        raw = diff_programs(
            compile_source(V1, version="1.0"),
            compile_source(V2, version="2.0"),
            "1.0", "2.0", minimize=False,
        )
        assert key in raw.indirect_methods
        assert key in raw.category2()
        assert key in spec.escaped_indirect
        assert key not in spec.category2()
        assert "TIB slot" in spec.minimization_reasons[key]

    def test_pure_methods_unrestricted(self, spec):
        assert ("Util", "double2", "(I)I") not in spec.category1()
        assert ("Util", "double2", "(I)I") not in spec.category2()

    def test_summary_counts(self, spec):
        summary = spec.summaries["User"]
        assert summary.fields_added == 2  # years, email
        assert summary.fields_deleted == 1  # age
        assert summary.methods_deleted == 1  # birthday
        assert summary.methods_body_changed == 1  # describe
        assert not spec.method_body_only()

    def test_blacklist_is_category3(self):
        old = compile_source(V1, version="1.0")
        new = compile_source(V2, version="2.0")
        spec = diff_programs(old, new, "1.0", "2.0",
                             blacklist=[("Main", "main", "()V")])
        assert ("Main", "main", "()V") in spec.category3()


class TestVersionPrefix:
    def test_examples(self):
        assert version_prefix("1.3.1") == "v131_"
        assert version_prefix("5.1.10") == "v5110_"
        assert version_prefix("2.0-rc1") == "v20rc1_"


class TestStubGeneration:
    def test_old_stub_has_fields_only(self, spec):
        old = compile_source(V1, version="1.0")
        stubs = generate_old_stubs(old, spec)
        assert "class v10_User" in stubs
        assert "string name;" in stubs
        assert "int age;" in stubs
        assert "static int count;" in stubs
        assert "describe" not in stubs  # methods removed (paper §2.3)

    def test_new_program_stubs_compile(self):
        new = compile_source(V2, version="2.0")
        stubs = generate_new_program_stubs(new)
        compiled = compile_source(stubs, access_checks=False,
                                  allow_final_writes=True)
        assert set(compiled) == {"User", "Util", "Audit", "Main"}

    def test_old_stub_field_types_point_at_new_classes(self):
        # A field whose type is an updated class keeps the NEW name: by
        # transformer time, old objects' fields reference transformed
        # objects (paper §2.3).
        v1 = "class A { B partner; } class B { int x; } " \
             "class Main { static void main() { } }"
        v2 = "class A { B partner; int extra; } class B { int x; int y; } " \
             "class Main { static void main() { } }"
        old = compile_source(v1, version="1.0")
        new = compile_source(v2, version="2.0")
        spec = diff_programs(old, new, "1.0", "2.0")
        stubs = generate_old_stubs(old, spec)
        assert "B partner;" in stubs  # not v10_B
        assert "class v10_B" in stubs

    def test_deleted_class_stub_generated_with_object_typed_fields(self):
        v1 = ("class Gone { static int total; } "
              "class Keep { Gone g; int k; } "
              "class Main { static void main() { } }")
        v2 = ("class Keep { int k; int k2; } "
              "class Main { static void main() { } }")
        old = compile_source(v1, version="1.0")
        new = compile_source(v2, version="2.0")
        spec = diff_programs(old, new, "1.0", "2.0")
        assert spec.deleted_classes == {"Gone"}
        stubs = generate_old_stubs(old, spec)
        assert "class v10_Gone" in stubs
        assert "static int total;" in stubs
        assert "Object g;" in stubs  # deleted type exposed as Object


class TestDefaultTransformers:
    def test_matching_fields_copied(self, spec):
        old = compile_source(V1, version="1.0")
        new = compile_source(V2, version="2.0")
        source = generate_default_transformers(old, new, spec)
        assert "to.name = from.name;" in source
        assert "User.count = v10_User.count;" in source
        # renamed/new fields left at defaults
        assert "to.years" not in source
        assert "to.email" not in source
        assert "to.age" not in source

    def test_overrides_replace_defaults(self, spec):
        old = compile_source(V1, version="1.0")
        new = compile_source(V2, version="2.0")
        override = """
    static void jvolveClass(User unused) { }
    static void jvolveObject(User to, v10_User from) {
        to.name = from.name;
        to.years = from.age;
    }
"""
        source = generate_default_transformers(
            old, new, spec, overrides={"User": override}
        )
        assert "to.years = from.age;" in source

    def test_prepared_update_compiles_transformers(self):
        old = compile_source(V1, version="1.0")
        new = compile_source(V2, version="2.0")
        prepared = prepare_update(old, new, "1.0", "2.0")
        assert "JvolveTransformers" in prepared.transformer_classfiles
        transformers = prepared.transformer_classfiles["JvolveTransformers"]
        assert transformers.get_method("jvolveObject", "(LUser;,Lv10_User;)V")
        assert transformers.get_method("jvolveClass", "(LUser;)V")
        assert prepared.prefix == "v10_"


class TestFlattenedLayout:
    def test_superclass_fields_first(self):
        source = ("class A { int a1; int a2; } class B extends A { int b1; } "
                  "class Main { static void main() { } }")
        classfiles = compile_source(source)
        layout = flattened_instance_fields(classfiles, "B")
        assert [name for name, _ in layout] == ["a1", "a2", "b1"]

    def test_layout_change_propagates_to_subclass(self):
        v1 = ("class A { int a1; } class B extends A { int b1; } "
              "class Main { static void main() { } }")
        v2 = ("class A { int a1; int a2; } class B extends A { int b1; } "
              "class Main { static void main() { } }")
        spec = diff_programs(
            compile_source(v1, version="1"), compile_source(v2, version="2"),
            "1", "2",
        )
        assert {"A", "B"} <= spec.class_updates


class TestSpecSerialization:
    def test_json_roundtrip(self, spec):
        from repro.dsu.specification import UpdateSpecification

        restored = UpdateSpecification.from_json(spec.to_json())
        assert restored.class_updates == spec.class_updates
        assert restored.added_classes == spec.added_classes
        assert restored.deleted_classes == spec.deleted_classes
        assert restored.method_body_updates == spec.method_body_updates
        assert restored.indirect_methods == spec.indirect_methods
        assert restored.deleted_methods == spec.deleted_methods
        assert restored.category1() == spec.category1()
        assert restored.category2() == spec.category2()

    def test_spec_file_is_human_readable(self, spec):
        text = spec.to_json()
        assert '"class_updates"' in text
        assert '"User"' in text
