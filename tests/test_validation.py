"""Tests for update pre-flight validation."""

import pytest

from repro.compiler.compile import compile_source
from repro.dsu.upt import ActiveMethodMapping, prepare_update
from repro.dsu.validation import validate_update

V1 = """
class User {
    string name;
    string[] tags;
    static int count;
}
class Main { static void main() { } }
"""

V2 = """
class User {
    string name;
    Tag[] tags;
    int age;
    static int count;
}
class Tag { string text; }
class Main { static void main() { } }
"""


def prepare(overrides=None, **kwargs):
    old = compile_source(V1, version="1.0")
    new = compile_source(V2, version="2.0")
    return old, prepare_update(old, new, "1.0", "2.0",
                               transformer_overrides=overrides, **kwargs)


class TestValidation:
    def test_default_transformers_warn_about_unassigned_fields(self):
        old, prepared = prepare()
        warnings = validate_update(old, prepared)
        joined = "\n".join(warnings)
        assert "User.age is new" in joined
        assert "User.tags is retyped" in joined

    def test_complete_custom_transformer_is_clean(self):
        override = {
            "User": """
    static void jvolveClass(User unused) {
        User.count = v10_User.count;
    }
    static void jvolveObject(User to, v10_User from) {
        to.name = from.name;
        to.age = 0 - 1;
        if (from.tags == null) {
            to.tags = null;
        } else {
            to.tags = new Tag[from.tags.length];
            for (int i = 0; i < from.tags.length; i = i + 1) {
                Tag t = new Tag();
                t.text = from.tags[i];
                to.tags[i] = t;
            }
        }
    }
"""
        }
        old, prepared = prepare(overrides=override)
        assert validate_update(old, prepared) == []

    def test_bogus_blacklist_warns(self):
        old, prepared = prepare(blacklist=[("Ghost", "spook", "()V")])
        warnings = validate_update(old, prepared)
        assert any("Ghost.spook" in w for w in warnings)

    def test_mapping_for_unchanged_method_warns(self):
        old, prepared = prepare()
        prepared.active_method_mappings[("Main", "main", "()V")] = (
            ActiveMethodMapping({0: 0})
        )
        warnings = validate_update(old, prepared)
        assert any("useless" in w for w in warnings)

    def test_mapping_with_out_of_range_pc_warns(self):
        v1 = 'class A { static void f() { Sys.print("a"); } } class Main { static void main() { } }'
        v2 = 'class A { static void f() { Sys.print("b"); } } class Main { static void main() { } }'
        old = compile_source(v1, version="1.0")
        new = compile_source(v2, version="2.0")
        prepared = prepare_update(old, new, "1.0", "2.0")
        prepared.active_method_mappings[("A", "f", "()V")] = (
            ActiveMethodMapping({0: 999})
        )
        warnings = validate_update(old, prepared)
        assert any("out-of-range" in w for w in warnings)

    def test_same_named_field_on_another_class_does_not_mask(self):
        # Regression: the coverage check used to collect bare PUTFIELD
        # field names, so assigning Badge.age hid that User.age was never
        # initialized. It is keyed by (owner, field) now.
        v1 = """
class User { string name; }
class Badge { int age; static Badge pin; }
class Main { static void main() { } }
"""
        v2 = """
class User { string name; int age; }
class Badge { int age; static Badge pin; }
class Main { static void main() { } }
"""
        override = {
            "User": """
    static void jvolveClass(User unused) { }
    static void jvolveObject(User to, v10_User from) {
        to.name = from.name;
        Badge.pin.age = 7;
    }
"""
        }
        old = compile_source(v1, version="1.0")
        new = compile_source(v2, version="2.0")
        prepared = prepare_update(old, new, "1.0", "2.0",
                                  transformer_overrides=override)
        warnings = validate_update(old, prepared)
        assert any("User.age is new" in w for w in warnings)

    def test_empty_update_warns(self):
        old = compile_source(V1, version="1.0")
        prepared = prepare_update(old, old, "1.0", "2.0")
        warnings = validate_update(old, prepared)
        assert any("changes nothing" in w for w in warnings)
