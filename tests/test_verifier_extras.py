"""Additional verifier coverage: reference joins at merge points, cast
narrowing, nested arrays, native signatures and stack-map shapes."""

import pytest

from repro.bytecode.classfile import MethodInfo
from repro.bytecode.instructions import Instr
from repro.bytecode.verifier import ClassTable, Verifier, VerifyError, verify_classfiles
from repro.compiler.compile import compile_prelude, compile_source
from repro.lang.types import class_type


def verified(source):
    classfiles = dict(compile_prelude())
    classfiles.update(compile_source(source))
    return classfiles, verify_classfiles(classfiles)


class TestReferenceJoins:
    def test_branches_join_to_common_superclass(self):
        source = """
        class Animal { int noise() { return 0; } }
        class Dog extends Animal { int noise() { return 1; } }
        class Cat extends Animal { int noise() { return 2; } }
        class Main {
            static int pick(bool flag) {
                Animal a = null;
                if (flag) { a = new Dog(); } else { a = new Cat(); }
                return a.noise();
            }
        }
        """
        classfiles, results = verified(source)
        pick = results["Main"][("pick", "(Z)I")]
        # At the virtual call after the join, the local holds the join type.
        call_pcs = [
            pc for pc, i in enumerate(pick.method.instructions)
            if i.op == "INVOKEVIRTUAL"
        ]
        state = pick.stack_map_at(call_pcs[0])
        assert class_type("Animal") in state.locals or any(
            getattr(value, "name", None) == "Animal" for value in state.locals
        )

    def test_null_joins_with_reference(self):
        verified(
            """
            class Box { }
            class Main {
                static Box maybe(bool flag) {
                    Box b = null;
                    if (flag) { b = new Box(); }
                    return b;
                }
            }
            """
        )

    def test_checkcast_narrows_stack_type(self):
        source = """
        class A { }
        class B extends A { int only() { return 7; } }
        class Main {
            static int f(A a) { return ((B)a).only(); }
        }
        """
        verified(source)  # would fail if the cast did not narrow


class TestArraysDeep:
    def test_nested_arrays_verify(self):
        verified(
            """
            class Main {
                static int f() {
                    int[][] grid = new int[3][];
                    grid[0] = new int[4];
                    grid[0][2] = 9;
                    return grid[0][2];
                }
            }
            """
        )

    def test_array_covariant_read_via_object(self):
        verified(
            """
            class Main {
                static Object f() {
                    string[] xs = new string[1];
                    xs[0] = "s";
                    return xs;
                }
            }
            """
        )

    def test_astore_of_wrong_type_rejected(self):
        table = ClassTable(compile_prelude())
        method = MethodInfo(
            "m", "()V", True, False, "public", 0,
            [
                Instr("CONST_INT", 1),
                Instr("NEWARRAY", "S"),   # string[]
                Instr("CONST_INT", 0),
                Instr("CONST_INT", 5),    # int into string[]
                Instr("ASTORE"),
                Instr("RETURN"),
            ],
        )
        with pytest.raises(VerifyError, match="cannot store"):
            Verifier(table).verify_method("Object", method)


class TestStackMapsShape:
    def test_every_reachable_pc_has_a_state(self):
        source = """
        class Main {
            static int f(int n) {
                int total = 0;
                for (int i = 0; i < n; i = i + 1) {
                    if (i % 2 == 0) { total = total + i; }
                    else { total = total - 1; }
                }
                return total;
            }
        }
        """
        classfiles, results = verified(source)
        f = results["Main"][("f", "(I)I")]
        executed = set()
        # Interpret abstractly: every pc the verifier deemed reachable must
        # carry a state whose locals length equals max_locals.
        for pc, state in f.states.items():
            assert len(state.locals) == f.method.max_locals
            executed.add(pc)
        # The entry and the final return are present.
        assert 0 in executed
        return_pcs = [
            pc for pc, i in enumerate(f.method.instructions)
            if i.op == "RETURN_VALUE"
        ]
        assert any(pc in executed for pc in return_pcs)

    def test_unreachable_trailing_return_has_no_state(self):
        source = """
        class Main {
            static int f() { return 5; }
        }
        """
        classfiles, results = verified(source)
        f = results["Main"][("f", "()I")]
        trailing = len(f.method.instructions) - 1
        assert f.method.instructions[trailing].op == "RETURN"
        assert trailing not in f.states

    def test_invokenative_pops_and_pushes(self):
        # String length: INVOKENATIVE with one receiver arg and int result.
        source = """
        class Main {
            static int f(string s) { return s.length(); }
        }
        """
        classfiles, results = verified(source)
        f = results["Main"][("f", "(S)I")]
        native_pcs = [
            pc for pc, i in enumerate(f.method.instructions)
            if i.op == "INVOKENATIVE"
        ]
        state = f.stack_map_at(native_pcs[0])
        _, stack_refs = state.reference_map()
        assert stack_refs == (True,)  # the receiver string


class TestMaxStack:
    def test_max_stack_recorded(self):
        source = """
        class Main {
            static int f(int a, int b, int c) { return a + b * c + (a - b); }
        }
        """
        classfiles, results = verified(source)
        f = results["Main"][("f", "(I,I,I)I")]
        assert f.max_stack >= 3
