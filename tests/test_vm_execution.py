"""End-to-end VM execution tests: compile jmini source, run it, observe
console output and VM state."""

import pytest

from tests.conftest import make_vm, run_main


class TestBasicExecution:
    def test_hello_world(self):
        vm = run_main(
            """
            class Main { static void main() { Sys.print("hello world"); } }
            """
        )
        assert vm.console == ["hello world"]

    def test_arithmetic(self):
        vm = run_main(
            """
            class Main {
                static void main() {
                    Sys.print("" + (2 + 3 * 4));
                    Sys.print("" + (10 / 3));
                    Sys.print("" + (10 % 3));
                    Sys.print("" + (0 - 7) / 2);
                    Sys.print("" + (0 - 7) % 2);
                }
            }
            """
        )
        assert vm.console == ["14", "3", "1", "-3", "-1"]

    def test_string_operations(self):
        vm = run_main(
            """
            class Main {
                static void main() {
                    string s = "Hello, World";
                    Sys.print("" + s.length());
                    Sys.print(s.substring(7, 12));
                    Sys.print(s.toUpperCase());
                    Sys.print("" + s.indexOf("World"));
                    Sys.print("" + s.startsWith("Hello"));
                    string[] parts = "a@b@c".split("@");
                    Sys.print("" + parts.length);
                    Sys.print(parts[1]);
                    string[] limited = "a@b@c".split("@", 2);
                    Sys.print(limited[1]);
                }
            }
            """
        )
        assert vm.console == ["12", "World", "HELLO, WORLD", "7", "true", "3", "b", "b@c"]

    def test_control_flow(self):
        vm = run_main(
            """
            class Main {
                static void main() {
                    int total = 0;
                    for (int i = 1; i <= 10; i = i + 1) { total = total + i; }
                    Sys.print("" + total);
                    int n = 27;
                    int steps = 0;
                    while (n != 1) {
                        if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
                        steps = steps + 1;
                    }
                    Sys.print("" + steps);
                }
            }
            """
        )
        assert vm.console == ["55", "111"]

    def test_objects_and_fields(self):
        vm = run_main(
            """
            class Counter {
                int value;
                void bump() { value = value + 1; }
                int get() { return value; }
            }
            class Main {
                static void main() {
                    Counter c = new Counter();
                    c.bump(); c.bump(); c.bump();
                    Sys.print("" + c.get());
                }
            }
            """
        )
        assert vm.console == ["3"]

    def test_constructor_and_initializers(self):
        vm = run_main(
            """
            class Account {
                int balance = 100;
                string owner;
                Account(string who) { this.owner = who; }
            }
            class Main {
                static void main() {
                    Account a = new Account("ada");
                    Sys.print(a.owner + ":" + a.balance);
                }
            }
            """
        )
        assert vm.console == ["ada:100"]

    def test_static_fields(self):
        vm = run_main(
            """
            class Registry {
                static int count = 5;
                static void bump() { count = count + 1; }
            }
            class Main {
                static void main() {
                    Registry.bump();
                    Registry.bump();
                    Sys.print("" + Registry.count);
                }
            }
            """
        )
        assert vm.console == ["7"]

    def test_virtual_dispatch(self):
        vm = run_main(
            """
            class Animal { string speak() { return "..."; } }
            class Dog extends Animal { string speak() { return "woof"; } }
            class Cat extends Animal { string speak() { return "meow"; } }
            class Main {
                static void main() {
                    Animal[] zoo = new Animal[3];
                    zoo[0] = new Dog();
                    zoo[1] = new Cat();
                    zoo[2] = new Animal();
                    for (int i = 0; i < zoo.length; i = i + 1) {
                        Sys.print(zoo[i].speak());
                    }
                }
            }
            """
        )
        assert vm.console == ["woof", "meow", "..."]

    def test_inherited_fields_and_super(self):
        vm = run_main(
            """
            class Base {
                int x;
                Base(int x0) { this.x = x0; }
                int describe() { return x; }
            }
            class Derived extends Base {
                int y;
                Derived() { super(10); this.y = 5; }
                int describe() { return super.describe() + y; }
            }
            class Main {
                static void main() { Sys.print("" + new Derived().describe()); }
            }
            """
        )
        assert vm.console == ["15"]

    def test_instanceof_and_cast(self):
        vm = run_main(
            """
            class A { }
            class B extends A { int bonus() { return 42; } }
            class Main {
                static void main() {
                    A a = new B();
                    if (a instanceof B) { Sys.print("" + ((B)a).bonus()); }
                    A plain = new A();
                    Sys.print("" + (plain instanceof B));
                }
            }
            """
        )
        assert vm.console == ["42", "false"]

    def test_recursion(self):
        vm = run_main(
            """
            class Main {
                static int fib(int n) {
                    if (n < 2) { return n; }
                    return fib(n - 1) + fib(n - 2);
                }
                static void main() { Sys.print("" + fib(15)); }
            }
            """
        )
        assert vm.console == ["610"]

    def test_string_equality_semantics(self):
        vm = run_main(
            """
            class Main {
                static void main() {
                    string a = "he" + "llo";
                    Sys.print("" + (a == "hello"));
                    string n = null;
                    Sys.print("" + (n == null));
                    Sys.print("" + (a == null));
                }
            }
            """
        )
        assert vm.console == ["true", "true", "false"]


class TestTraps:
    def test_null_dereference_kills_thread(self):
        vm = run_main(
            """
            class Box { int v; }
            class Main {
                static void main() {
                    Box b = null;
                    Sys.print("" + b.v);
                }
            }
            """
        )
        assert any("null" in entry for entry in vm.trap_log)
        assert vm.console == []

    def test_division_by_zero(self):
        vm = run_main(
            """
            class Main { static void main() { int z = 0; Sys.print("" + 1 / z); } }
            """
        )
        assert any("division" in entry for entry in vm.trap_log)

    def test_array_bounds(self):
        vm = run_main(
            """
            class Main {
                static void main() { int[] xs = new int[2]; xs[5] = 1; }
            }
            """
        )
        assert any("bounds" in entry for entry in vm.trap_log)

    def test_bad_cast(self):
        vm = run_main(
            """
            class A {} class B extends A {}
            class Main {
                static void main() { A a = new A(); B b = (B)a; }
            }
            """
        )
        assert any("cast" in entry for entry in vm.trap_log)


class TestThreads:
    def test_spawned_threads_interleave(self):
        vm = run_main(
            """
            class Worker {
                int id;
                Worker(int id0) { this.id = id0; }
                void run() {
                    for (int i = 0; i < 3; i = i + 1) { Sys.print("w" + id); }
                }
            }
            class Main {
                static void main() {
                    Sys.spawn(new Worker(1));
                    Sys.spawn(new Worker(2));
                }
            }
            """
        )
        assert sorted(vm.console) == ["w1", "w1", "w1", "w2", "w2", "w2"]

    def test_sleep_wakes_at_deadline(self):
        vm = run_main(
            """
            class Main {
                static void main() {
                    int before = Sys.time();
                    Sys.sleep(50);
                    int after = Sys.time();
                    Sys.print("" + (after - before >= 50));
                }
            }
            """
        )
        assert vm.console == ["true"]

    def test_time_advances_when_all_threads_sleep(self):
        vm = run_main(
            """
            class Main {
                static void main() { Sys.sleep(500); Sys.print("woke"); }
            }
            """
        )
        assert vm.console == ["woke"]
        assert vm.clock.now_ms >= 500


class TestAdaptiveCompilation:
    def test_hot_method_promoted_to_opt(self):
        vm = run_main(
            """
            class Math2 {
                static int half(int x) { return x / 2; }
            }
            class Main {
                static void main() {
                    int acc = 0;
                    for (int i = 0; i < 200; i = i + 1) { acc = acc + Math2.half(i); }
                    Sys.print("" + acc);
                }
            }
            """
        )
        assert vm.console == ["9900"]
        entry = vm.methods.lookup("Math2", "half", "(I)I")
        assert entry.opt_code is not None
        assert vm.jit.opt_compiles >= 1

    def test_inlined_callee_recorded(self):
        vm = run_main(
            """
            class Inner {
                static int twice(int x) { return x + x; }
            }
            class Outer {
                static int go(int x) { return Inner.twice(x) + 1; }
            }
            class Main {
                static void main() {
                    int acc = 0;
                    for (int i = 0; i < 200; i = i + 1) { acc = acc + Outer.go(i); }
                    Sys.print("" + acc);
                }
            }
            """
        )
        assert vm.console == ["40000"]
        entry = vm.methods.lookup("Outer", "go", "(I)I")
        assert entry.opt_code is not None
        assert ("Inner", "twice", "(I)I") in entry.opt_code.inlined
